(** Unit and property tests for exact rationals. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let r = Rat.of_ints

let unit_tests =
  [ t "normalization" (fun () ->
        Alcotest.check rat "2/4 = 1/2" (r 1 2) (r 2 4);
        Alcotest.check rat "-2/-4 = 1/2" (r 1 2) (r (-2) (-4));
        Alcotest.check rat "2/-4 = -1/2" (r (-1) 2) (r 2 (-4));
        Alcotest.check rat "0/7 = 0" Rat.zero (r 0 7));
    t "den positive, coprime" (fun () ->
        let x = r 6 (-4) in
        Alcotest.check bigint "num" (Bigint.of_int (-3)) (Rat.num x);
        Alcotest.check bigint "den" (Bigint.of_int 2) (Rat.den x));
    t "zero denominator raises" (fun () ->
        Alcotest.check_raises "d0" Division_by_zero (fun () ->
            ignore (r 1 0)));
    t "arithmetic" (fun () ->
        Alcotest.check rat "1/2+1/3" (r 5 6) (Rat.add (r 1 2) (r 1 3));
        Alcotest.check rat "1/2-1/3" (r 1 6) (Rat.sub (r 1 2) (r 1 3));
        Alcotest.check rat "2/3*3/4" (r 1 2) (Rat.mul (r 2 3) (r 3 4));
        Alcotest.check rat "(1/2)/(1/3)" (r 3 2) (Rat.div (r 1 2) (r 1 3)));
    t "inv of zero raises" (fun () ->
        Alcotest.check_raises "inv0" Division_by_zero (fun () ->
            ignore (Rat.inv Rat.zero)));
    t "to_bigint" (fun () ->
        Alcotest.check bigint "6/3" (Bigint.of_int 2) (Rat.to_bigint (r 6 3));
        Alcotest.check_raises "1/2" (Failure "Rat.to_bigint: not an integer")
          (fun () -> ignore (Rat.to_bigint (r 1 2))));
    t "string roundtrip" (fun () ->
        List.iter
          (fun s ->
             Alcotest.(check string) s s (Rat.to_string (Rat.of_string s)))
          [ "0"; "5"; "-7"; "1/2"; "-3/7"; "123456789123456789/2" ]);
    t "compare" (fun () ->
        Alcotest.(check bool) "1/3 < 1/2" true (Rat.compare (r 1 3) (r 1 2) < 0);
        Alcotest.(check bool) "-1/2 < 1/3" true
          (Rat.compare (r (-1) 2) (r 1 3) < 0));
    t "example 2 sum" (fun () ->
        (* 5/6 + 2/6 - 1/6 = 1 *)
        Alcotest.check rat "sum" Rat.one
          (Rat.add (r 5 6) (Rat.add (r 2 6) (r (-1) 6))))
  ]

let property_tests =
  let p2 = QCheck.pair arb_rat arb_rat in
  let p3 = QCheck.triple arb_rat arb_rat arb_rat in
  [ qtest "add commutative" p2 (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    qtest "add associative" p3 (fun (a, b, c) ->
        Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)));
    qtest "mul distributes" p3 (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c))
          (Rat.add (Rat.mul a b) (Rat.mul a c)));
    qtest "sub inverse of add" p2 (fun (a, b) ->
        Rat.equal a (Rat.sub (Rat.add a b) b));
    qtest "mul then div identity" p2 (fun (a, b) ->
        QCheck.assume (not (Rat.is_zero b));
        Rat.equal a (Rat.div (Rat.mul a b) b));
    qtest "inv involutive" arb_rat (fun a ->
        QCheck.assume (not (Rat.is_zero a));
        Rat.equal a (Rat.inv (Rat.inv a)));
    qtest "normal form means structural equality" p2 (fun (a, b) ->
        Rat.equal a b = (Rat.compare a b = 0));
    qtest "string roundtrip" arb_rat (fun a ->
        Rat.equal a (Rat.of_string (Rat.to_string a)))
  ]

(* Regression for the serve-layer NaN: when numerator and denominator both
   exceed float range, the old [to_float] computed inf /. inf. *)
let to_float_tests =
  [ t "to_float of huge-factorial rationals is finite" (fun () ->
        let f200 = Combi.factorial 200 in
        let x = Rat.make (Bigint.add f200 Bigint.one) f200 in
        let f = Rat.to_float x in
        Alcotest.(check bool) "finite" true (Float.is_finite f);
        Alcotest.(check (float 1e-12)) "~1" 1.0 f;
        let y = Rat.make (Bigint.mul f200 (Bigint.of_int 3)) (Bigint.mul f200 (Bigint.of_int 4)) in
        Alcotest.(check (float 1e-12)) "3/4" 0.75 (Rat.to_float y);
        let p = Bigint.pow Bigint.two 5000 in
        let z = Rat.make (Bigint.mul p (Bigint.of_int 7)) (Bigint.succ p) in
        Alcotest.(check (float 1e-12)) "~7" 7.0 (Rat.to_float z));
    t "to_float saturates when the quotient really overflows" (fun () ->
        let p = Bigint.pow Bigint.two 5000 in
        Alcotest.(check bool) "inf" true
          (Rat.to_float (Rat.make (Bigint.mul p p) p) = Float.infinity);
        Alcotest.(check (float 0.0)) "0 underflow" 0.0
          (Rat.to_float (Rat.make p (Bigint.mul p p))));
    qtest "to_float agrees with small-rational division" arb_rat (fun a ->
        let expect =
          Bigint.to_float (Rat.num a) /. Bigint.to_float (Rat.den a)
        in
        Rat.to_float a = expect)
  ]

let suite = unit_tests @ property_tests @ to_float_tests
