#!/usr/bin/env bash
# CLI-level checks for the approx subcommand: early stopping, the JSONL
# convergence log, bit-identical replay across --jobs, progress lines
# and the estimator_* metrics series.
# Invoked by the dune rule in test/dune as:  bash cli_approx_test.sh SHAPMC_EXE
set -euo pipefail

exe="$1"
fail() { echo "cli-approx FAILED: $1" >&2; exit 1; }

formula="(x1 & x2) | (x3 & x4)"

# Early stopping: the Hoeffding budget for eps=delta=0.05 is 2952, and
# the Bernstein interval certifies this low-variance instance well
# before that.
out=$("$exe" approx --eps 0.05 --delta 0.05 --seed 7 --convergence c1.jsonl \
        -j 1 "$formula" 2>/dev/null)
grep -q "converged: true" <<<"$out" || fail "run did not converge"
samples=$(awk '/^samples:/{print $2}' <<<"$out")
[ "$samples" -lt 2952 ] || fail "no early stop: spent $samples of 2952"
[ "$(grep -c "±" <<<"$out")" -eq 4 ] || fail "expected 4 ± estimate lines"

# JSONL checkpoints: samples strictly increase, the certified max
# half-width never widens.
[ -s c1.jsonl ] || fail "c1.jsonl empty or missing"
python3 - c1.jsonl <<'EOF' || fail "convergence log not monotone"
import json, sys
rows = [json.loads(l) for l in open(sys.argv[1])]
assert rows, "no checkpoints"
for a, b in zip(rows, rows[1:]):
    assert b["samples"] > a["samples"], "samples not increasing"
    assert b["max_half_width"] <= a["max_half_width"], "half-width widened"
EOF

# Bit-identical replay at -j 4: same stdout, same convergence log.
out4=$("$exe" approx --eps 0.05 --delta 0.05 --seed 7 --convergence c4.jsonl \
         -j 4 "$formula" 2>/dev/null)
[ "$out" = "$out4" ] || fail "-j 4 stdout differs from -j 1"
cmp -s c1.jsonl c4.jsonl || fail "-j 4 convergence log differs from -j 1"

# A different seed must actually change the run (guards against the
# seed being ignored).
outs=$("$exe" approx --eps 0.05 --delta 0.05 --seed 8 "$formula" 2>/dev/null)
[ "$out" != "$outs" ] || fail "seed 8 reproduced seed 7 exactly"

# --progress writes round lines to stderr, keeping stdout clean.
"$exe" approx --samples 600 --seed 1 --progress "$formula" \
  >prog.out 2>prog.err
grep -q "^progress: samples=" prog.err || fail "no progress lines on stderr"
grep -q "^progress:" prog.out && fail "progress leaked to stdout"

# --metrics exposes the estimator_* series.
"$exe" approx --samples 600 --seed 1 --metrics metrics.out "$formula" \
  >/dev/null 2>/dev/null
grep -q "estimator_samples_total{estimator=\"truncated\"}" metrics.out \
  || fail "estimator_samples_total missing from metrics"
grep -q "estimator_ci_half_width" metrics.out \
  || fail "estimator_ci_half_width missing from metrics"
grep -q "estimator_seconds" metrics.out \
  || fail "estimator_seconds missing from metrics"

# trace-report renders the estimator convergence section from a trace.
"$exe" approx --samples 600 --seed 1 --trace at.jsonl "$formula" \
  >/dev/null 2>/dev/null
report=$("$exe" trace-report at.jsonl)
grep -q "estimator convergence:" <<<"$report" \
  || fail "trace-report lacks the estimator convergence section"
grep -q "truncated" <<<"$report" \
  || fail "convergence section does not name the estimator"

# An unknown estimator is a clean CLI error, not a crash.
if "$exe" approx --estimator bogus "$formula" >/dev/null 2>bogus.err; then
  fail "bogus estimator accepted"
fi
grep -qi "unknown estimator" bogus.err || fail "bogus estimator: wrong error"

echo "cli-approx OK"
