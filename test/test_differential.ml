(** Differential properties: independently implemented algorithms must
    agree on random inputs.

    Counters (brute enumeration, DPLL with component decomposition, the
    bottom-up d-D circuit pass) are compared on formulas of up to 10
    variables; the Theorem 3.1 reduction pipeline is compared against the
    exponential Eq. (2) reference on smaller universes (the OR-substituted
    oracle instances blow up as n·l).

    Determinism: every QCheck test gets its own fixed-seed
    [Random.State], so a reported failure reproduces by rerunning the
    suite.  Iteration counts are deliberately low in the default
    [dune runtest] (tier-1) and raised by the [@slow] alias through the
    [SHAPMC_QCHECK_COUNT] environment variable. *)

open Helpers

let iterations default =
  match Sys.getenv_opt "SHAPMC_QCHECK_COUNT" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> default)
  | None -> default

(* Like [Helpers.qtest], but deterministically seeded and env-scaled. *)
let dtest ~seed ~count name arb prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 2024; seed |])
    (QCheck.Test.make ~count:(iterations count) ~name arb prop)

let universe n = List.init n succ

(* ------------------------------------------------------------------ *)
(* Model counters *)

let vars10 = universe 10
let arb10 = arb_formula ~nvars:10 ~depth:4

let counter_tests =
  [ dtest ~seed:1 ~count:40 "brute = dpll = circuit (#F, 10-var universe)"
      arb10 (fun f ->
        let b = Brute.count ~vars:vars10 f in
        Bigint.equal b (Dpll.count_universe ~vars:vars10 f)
        && Bigint.equal b (Count.count ~vars:vars10 (Compile.compile f)));
    dtest ~seed:2 ~count:25 "brute = dpll = circuit (#_* F, 10-var universe)"
      arb10 (fun f ->
        let b = Brute.count_by_size ~vars:vars10 f in
        Kvec.equal b (Dpll.count_by_size_universe ~vars:vars10 f)
        && Kvec.equal b (Count.count_by_size ~vars:vars10 (Compile.compile f)));
    dtest ~seed:3 ~count:25
      "count_by_size_circuit total = brute (over the circuit's universe)"
      arb10 (fun f ->
        (* The compiled circuit may drop variables; smooth its stratified
           vector up to the full universe before comparing. *)
        let c = Compile.compile f in
        let kv = Count.count_by_size_circuit c in
        let smoothed =
          Kvec.extend kv ~extra:(10 - Kvec.universe_size kv)
        in
        Kvec.equal smoothed (Brute.count_by_size ~vars:vars10 f));
    dtest ~seed:4 ~count:25 "obdd = dpll (#F, 10-var universe)" arb10
      (fun f ->
        let m = Obdd.create_manager ~order:vars10 in
        Bigint.equal
          (Obdd.count m ~vars:vars10 (Obdd.of_formula m f))
          (Dpll.count_universe ~vars:vars10 f)) ]

(* ------------------------------------------------------------------ *)
(* Shapley pipelines: the Theorem 3.1 reduction vs the Eq. (2) reference.
   The dpll oracle handles 6-variable universes (oracle instances reach
   n·(n+1) = 42 fresh variables); the brute oracle enumerates 2^(n·l)
   assignments, so it stays at n = 3. *)

let shap_agree ~oracle ~vars f =
  let reference = Naive.shap_subsets ~vars f in
  let via = Pipeline.shap_via_count_oracle ~oracle ~vars f in
  List.length reference = List.length via
  && List.for_all2
       (fun (i, x) (j, y) -> i = j && Rat.equal x y)
       (List.sort compare reference)
       (List.sort compare via)

let shap_tests =
  [ dtest ~seed:5 ~count:15
      "shap: Eq.(2) = reduction over dpll oracle (6-var universe)"
      (arb_formula ~nvars:6 ~depth:4)
      (shap_agree ~oracle:Pipeline.dpll_count_oracle ~vars:(universe 6));
    dtest ~seed:6 ~count:10
      "shap: Eq.(2) = reduction over brute oracle (3-var universe)"
      (arb_formula ~nvars:3 ~depth:3)
      (shap_agree ~oracle:Pipeline.brute_count_oracle ~vars:(universe 3));
    dtest ~seed:7 ~count:10
      "shap: dpll-reduction = pqe route (5-var universe)"
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
        let vars = universe 5 in
        let a =
          Pipeline.shap_via_count_oracle ~oracle:Pipeline.dpll_count_oracle
            ~vars f
        in
        let b =
          Pipeline.shap_via_pqe_oracle ~oracle:Pipeline.pqe_circuit_oracle
            ~vars f
        in
        List.for_all2
          (fun (i, x) (j, y) -> i = j && Rat.equal x y)
          (List.sort compare a) (List.sort compare b)) ]

(* ------------------------------------------------------------------ *)
(* The reverse reduction: # via a Shapley oracle (Lemma 3.4). *)

let reverse_tests =
  [ dtest ~seed:8 ~count:10 "count via Shap oracle = brute (3-var universe)"
      (arb_formula ~nvars:3 ~depth:3)
      (fun f ->
        Bigint.equal
          (Pipeline.count_via_shap_oracle
             ~oracle:Pipeline.shap_oracle_of_subsets ~vars:(universe 3) f)
          (Brute.count ~vars:(universe 3) f)) ]

let suite = counter_tests @ shap_tests @ reverse_tests
