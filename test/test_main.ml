(** Aggregated test runner; each module contributes one Alcotest suite. *)

let () =
  Alcotest.run "shapmc"
    [ ("bigint", Test_bigint.suite);
      ("arith-diff", Test_arith_diff.suite);
      ("rat", Test_rat.suite);
      ("arith", Test_arith_more.suite);
      ("formula", Test_formula.suite);
      ("counting", Test_counting.suite);
      ("circuits", Test_circuits.suite);
      ("obdd", Test_obdd.suite);
      ("core", Test_core.suite);
      ("db", Test_db.suite);
      ("stretch", Test_stretch.suite);
      ("prob", Test_prob.suite);
      ("extensions", Test_extensions.suite);
      ("formats", Test_formats.suite);
      ("negation", Test_negation.suite);
      ("cnf-compiler", Test_compile_cnf.suite);
      ("obs", Test_obs.suite);
      ("scope", Test_scope.suite);
      ("metrics", Test_metrics.suite);
      ("parallel", Test_parallel.suite);
      ("trace", Test_trace.suite);
      ("differential", Test_differential.suite);
      ("cache", Test_cache.suite);
      ("approx", Test_approx.suite);
      ("serve", Test_serve.suite) ]
