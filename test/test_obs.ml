(** Bound-asserting tests: the Obs ledger, recorded while running the
    paper's reductions, must witness exactly the oracle-call and size
    bounds the lemmas state.

    - Lemma 3.3: [#_* F] from a [#]-oracle consults it on exactly [n + 1]
      OR-substituted instances [F^(l)], [l = 1..n+1], each over [n·l]
      variables.
    - Lemma 3.2 (over 3.3): all Shapley values consult the [#]-oracle
      exactly [(n + 1) + n²] times.
    - Lemma 3.4: [#F] from a Shap-oracle consults it exactly [n²] times.
    - Lemma 9: circuit OR-substitution grows the circuit by [O(k·ℓ)]
      gates. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* Run [f] under a fresh, enabled ledger; always restore the disabled
   default so other suites are unaffected. *)
let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* A deterministic pseudo-random formula mentioning variables 1..nvars. *)
let rec random_formula st ~nvars ~depth =
  if depth <= 0 then Formula.var (1 + Random.State.int st nvars)
  else
    match Random.State.int st 8 with
    | 0 | 1 -> Formula.var (1 + Random.State.int st nvars)
    | 2 -> Formula.not_ (random_formula st ~nvars ~depth:(depth - 1))
    | 3 | 4 ->
      Formula.conj2
        (random_formula st ~nvars ~depth:(depth - 1))
        (random_formula st ~nvars ~depth:(depth - 1))
    | _ ->
      Formula.disj2
        (random_formula st ~nvars ~depth:(depth - 1))
        (random_formula st ~nvars ~depth:(depth - 1))

(* ------------------------------------------------------------------ *)

let switch_tests =
  [ t "disabled ledger records nothing" (fun () ->
        Obs.reset ();
        Obs.disable ();
        Obs.incr "x";
        Obs.record ~oracle:"o" ~n:1 ~seconds:0.0 ();
        Obs.record_subst ~kind:"k" ~pre:1 ~post:2 ~fresh:3 ();
        ignore (Obs.with_span "s" (fun () -> 42));
        Alcotest.(check int) "counter" 0 (Obs.counter "x");
        Alcotest.(check int) "calls" 0 (Obs.call_count ());
        Alcotest.(check int) "substs" 0 (List.length (Obs.substs ()));
        Alcotest.(check int) "spans" 0 (List.length (Obs.spans ())));
    t "counters, spans and ledgers accumulate when enabled" (fun () ->
        with_obs (fun () ->
            Obs.incr "x";
            Obs.add "x" 2;
            let v =
              Obs.with_span "outer" (fun () ->
                  Obs.with_span "inner" (fun () -> 7))
            in
            Alcotest.(check int) "span result" 7 v;
            Obs.record ~oracle:"o" ~n:3 ~arity:2 ~size:5 ~seconds:0.0 ();
            Alcotest.(check int) "counter" 3 (Obs.counter "x");
            Alcotest.(check int) "calls" 1 (Obs.call_count ~oracle:"o" ());
            let paths = List.map (fun s -> s.Obs.span_path) (Obs.spans ()) in
            Alcotest.(check (list string)) "hierarchical paths"
              [ "outer"; "outer/inner" ] paths));
    t "report and JSON smoke" (fun () ->
        with_obs (fun () ->
            let _ =
              Pipeline.kcounts_via_count_oracle
                ~oracle:Pipeline.dpll_count_oracle ~vars:[ 1; 2 ]
                (Parser.formula_of_string_exn "x1 & x2")
            in
            let r = Obs.report () in
            Alcotest.(check bool) "report mentions oracle" true
              (contains ~affix:"dpll" r);
            let j = Obs.to_json () in
            Alcotest.(check bool) "json object" true
              (String.length j > 2 && j.[0] = '{');
            Alcotest.(check bool) "json has oracle_calls" true
              (contains ~affix:"\"oracle_calls\"" j))) ]

(* ------------------------------------------------------------------ *)
(* Lemma 3.3: exactly n+1 count-oracle calls, arities 1..n+1, instance
   universes of size n·l. *)

let lemma33_tests =
  List.map
    (fun n ->
       t (Printf.sprintf "Lemma 3.3: n+1 oracle calls at n = %d" n) (fun () ->
           let st = Random.State.make [| 33; n |] in
           let f = random_formula st ~nvars:n ~depth:n in
           let vars = List.init n succ in
           with_obs (fun () ->
               let kv =
                 Pipeline.kcounts_via_count_oracle
                   ~oracle:Pipeline.dpll_count_oracle ~vars f
               in
               Alcotest.(check int) "exactly n+1 calls" (n + 1)
                 (Obs.call_count ~oracle:"dpll" ());
               let calls = Obs.calls () in
               Alcotest.(check (list int)) "arities are 1..n+1"
                 (List.init (n + 1) succ)
                 (List.sort compare
                    (List.map (fun c -> c.Obs.call_arity) calls));
               List.iter
                 (fun c ->
                    Alcotest.(check int)
                      (Printf.sprintf "F^(%d) is over n·l variables"
                         c.Obs.call_arity)
                      (n * c.Obs.call_arity) c.Obs.call_n)
                 calls;
               (* the instrumented run still computes the right answer *)
               Alcotest.check kvec "kcounts correct"
                 (Brute.count_by_size ~vars f) kv)))
    [ 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Lemma 3.2 over Lemma 3.3: (n+1) + n² count-oracle calls in total —
   n+1 for #_* of the isomorphic copy, plus n zapped instances of n
   oracle calls each. *)

let lemma32_tests =
  List.map
    (fun n ->
       t (Printf.sprintf "Lemma 3.2: (n+1) + n^2 oracle calls at n = %d" n)
         (fun () ->
            let st = Random.State.make [| 32; n |] in
            let f = random_formula st ~nvars:n ~depth:n in
            let vars = List.init n succ in
            with_obs (fun () ->
                let shap =
                  Pipeline.shap_via_count_oracle
                    ~oracle:Pipeline.dpll_count_oracle ~vars f
                in
                Alcotest.(check int) "call budget" ((n + 1) + (n * n))
                  (Obs.call_count ~oracle:"dpll" ());
                check_shap "values correct" (Naive.shap_subsets ~vars f) shap)))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Lemma 3.4: n² Shapley-oracle calls (n positions × arities 1..n). *)

let lemma34_tests =
  List.map
    (fun n ->
       t (Printf.sprintf "Lemma 3.4: n^2 Shap-oracle calls at n = %d" n)
         (fun () ->
            let st = Random.State.make [| 34; n |] in
            let f = random_formula st ~nvars:n ~depth:n in
            let vars = List.init n succ in
            with_obs (fun () ->
                let count =
                  Pipeline.count_via_shap_oracle
                    ~oracle:Pipeline.shap_oracle_of_subsets ~vars f
                in
                Alcotest.(check int) "n^2 calls" (n * n)
                  (Obs.call_count ~oracle:"eq2-subsets" ());
                Alcotest.check bigint "count correct" (Brute.count ~vars f)
                  count)))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Lemma 9: OR-substituting every variable of a d-D circuit G by a block
   of l fresh variables yields a circuit of at most |G| + 10·k·l gates
   (the chain construction spends < 10 gates per fresh variable), and the
   substitution ledger records the pre/post sizes. *)

let lemma9_case ~seed ~nvars ~l () =
  let st = Random.State.make [| 9; seed |] in
  let f = random_formula st ~nvars ~depth:5 in
  let g = Compile.compile f in
  let k = Vset.cardinal (Circuit.vars g) in
  with_obs (fun () ->
      let g', blocks = Or_subst.uniform_or ~l g in
      Alcotest.(check bool)
        (Printf.sprintf "|G'| <= |G| + 10·k·l (|G|=%d, k=%d, l=%d, |G'|=%d)"
           (Circuit.size g) k l (Circuit.size g'))
        true
        (Circuit.size g' <= Circuit.size g + (10 * k * l));
      Alcotest.(check int) "k blocks of l fresh variables each" (k * l)
        (List.fold_left (fun acc (_, zs) -> acc + List.length zs) 0 blocks);
      match Obs.substs () with
      | [ e ] ->
        Alcotest.(check string) "kind" "circuit.or" e.Obs.subst_kind;
        Alcotest.(check int) "ledgered pre-size" (Circuit.size g)
          e.Obs.subst_pre;
        Alcotest.(check int) "ledgered post-size" (Circuit.size g')
          e.Obs.subst_post;
        Alcotest.(check int) "ledgered fresh variables" (k * l)
          e.Obs.subst_fresh
      | evs ->
        Alcotest.failf "expected exactly one subst event, got %d"
          (List.length evs))

let lemma9_tests =
  List.concat_map
    (fun (seed, nvars) ->
       List.map
         (fun l ->
            t
              (Printf.sprintf
                 "Lemma 9: |G'| = O(|G| + k·l) (seed %d, %d vars, l = %d)"
                 seed nvars l)
              (lemma9_case ~seed ~nvars ~l))
         [ 1; 2; 4; 8; 16 ])
    [ (1, 4); (2, 6); (3, 8) ]

(* ------------------------------------------------------------------ *)
(* Regression: the pipeline universe must reject duplicate variables —
   previously [~vars:[1; 1; 2]] silently deduped into a 2-variable
   universe while reporting n = 3, corrupting every downstream count. *)

let universe_tests =
  [ t "duplicate universe variables rejected (kcounts route)" (fun () ->
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Pipeline: duplicate variables in the universe")
          (fun () ->
             ignore
               (Pipeline.kcounts_via_count_oracle
                  ~oracle:Pipeline.brute_count_oracle ~vars:[ 1; 1; 2 ]
                  (Formula.var 1))));
    t "duplicate universe variables rejected (shap route)" (fun () ->
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Pipeline: duplicate variables in the universe")
          (fun () ->
             ignore
               (Pipeline.shap_via_count_oracle
                  ~oracle:Pipeline.brute_count_oracle ~vars:[ 2; 1; 2 ]
                  (Formula.var 1))));
    t "distinct universe variables still accepted" (fun () ->
        let f = Parser.formula_of_string_exn "x1 & x2" in
        Alcotest.check kvec "kcounts"
          (Brute.count_by_size ~vars:[ 1; 2; 3 ] f)
          (Pipeline.kcounts_via_count_oracle
             ~oracle:Pipeline.brute_count_oracle ~vars:[ 3; 1; 2 ] f)) ]

let suite =
  switch_tests @ lemma33_tests @ lemma32_tests @ lemma34_tests @ lemma9_tests
  @ universe_tests
