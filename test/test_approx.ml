(** The approximate-Shapley estimator suite and its convergence
    telemetry: sample-budget arithmetic, the Welford/CI machinery of
    {!Convergence}, and seeded statistical checks of every estimator
    against the exact dichotomy solver on small hierarchical instances
    — at jobs 1 and 4, which must agree bit-for-bit.

    Determinism mirrors {!Test_differential}: fixed-seed QCheck states,
    iteration counts scaled up by [@slow] through [SHAPMC_QCHECK_COUNT]. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f

let iterations default =
  match Sys.getenv_opt "SHAPMC_QCHECK_COUNT" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> default)
  | None -> default

let dtest ~seed ~count name arb prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 2024; seed |])
    (QCheck.Test.make ~count:(iterations count) ~name arb prop)

let close ?(tol = 1e-9) what a b =
  if Float.abs (a -. b) > tol then
    Alcotest.failf "%s: %.17g vs %.17g (tol %g)" what a b tol

let all_estimators =
  Sampling.[ Permutation; Truncated; Antithetic; Stratified ]

(* ------------------------------------------------------------------ *)
(* Sample-budget arithmetic *)

let budget_tests =
  [ t "samples_for matches the Hoeffding bound" (fun () ->
        let m ~eps ~delta =
          int_of_float (ceil (2.0 *. log (2.0 /. delta) /. (eps *. eps)))
        in
        List.iter
          (fun (eps, delta) ->
            Alcotest.(check int)
              (Printf.sprintf "eps=%g delta=%g" eps delta)
              (m ~eps ~delta)
              (Sampling.samples_for ~eps ~delta))
          [ (0.05, 0.05); (0.1, 0.1); (0.2, 0.01); (0.5, 0.5) ]);
    t "rejects nonsense eps/delta" (fun () ->
        List.iter
          (fun (eps, delta) ->
            Alcotest.check_raises
              (Printf.sprintf "eps=%g delta=%g" eps delta)
              (Invalid_argument "Sampling.samples_for")
              (fun () -> ignore (Sampling.samples_for ~eps ~delta)))
          [ (0.0, 0.05); (-1.0, 0.05); (0.1, 0.0); (0.1, 1.0) ]);
    t "guards int_of_float overflow on tiny eps" (fun () ->
        List.iter
          (fun eps ->
            match Sampling.samples_for ~eps ~delta:0.05 with
            | exception Invalid_argument m ->
                Alcotest.(check bool)
                  "error names the 1e15 ceiling" true
                  (String.length m > 0
                  && String.length m >= 4
                  &&
                  let rec has i =
                    i + 4 <= String.length m
                    && (String.sub m i 4 = "1e15" || has (i + 1))
                  in
                  has 0)
            | (_ : int) -> Alcotest.failf "eps=%g did not raise" eps)
          [ 1e-9; 1e-200; Float.min_float ]) ]

(* ------------------------------------------------------------------ *)
(* Convergence: quantiles, half-width formulas, Welford streaming *)

let convergence_tests =
  [ t "z_quantile hits the usual table" (fun () ->
        close ~tol:1e-6 "z(0.975)" 1.959963985 (Convergence.z_quantile 0.975);
        close ~tol:1e-6 "z(0.995)" 2.575829304 (Convergence.z_quantile 0.995);
        close ~tol:1e-8 "z(0.5)" 0.0 (Convergence.z_quantile 0.5);
        close ~tol:1e-9 "symmetry"
          (-.Convergence.z_quantile 0.975)
          (Convergence.z_quantile 0.025);
        List.iter
          (fun p ->
            match Convergence.z_quantile p with
            | exception Invalid_argument _ -> ()
            | (_ : float) -> Alcotest.failf "p=%g did not raise" p)
          [ 0.0; 1.0; -0.5; 2.0 ]);
    t "hw_of closed forms" (fun () ->
        let delta = 0.05 and range = 2.0 in
        close "hoeffding"
          (range *. sqrt (log (2.0 /. delta) /. (2.0 *. 1000.0)))
          (Convergence.hw_of ~ci:Hoeffding ~delta ~range ~count:1000
             ~variance:5.0);
        (* variance-free Bernstein collapses to its deviation term *)
        close "bernstein, zero variance"
          (3.0 *. range *. log (3.0 /. delta) /. 1000.0)
          (Convergence.hw_of ~ci:Bernstein ~delta ~range ~count:1000
             ~variance:0.0);
        close "clt"
          (Convergence.z_quantile 0.975 *. sqrt (0.25 /. 1000.0))
          (Convergence.hw_of ~ci:Clt ~delta ~range ~count:1000 ~variance:0.25);
        (* the variance-adaptive intervals need a variance estimate *)
        List.iter
          (fun ci ->
            Alcotest.(check bool)
              "infinite below 2 observations" true
              (Convergence.hw_of ~ci ~delta ~range ~count:1 ~variance:0.0
               = infinity))
          Convergence.[ Clt; Bernstein ];
        (* Hoeffding is monotone in the count *)
        let hw c =
          Convergence.hw_of ~ci:Hoeffding ~delta ~range ~count:c ~variance:0.0
        in
        Alcotest.(check bool) "monotone" true (hw 100 > hw 200 && hw 200 > hw 400));
    t "welford matches direct moments" (fun () ->
        let xs = [ 0.0; 1.0; -1.0; 0.5; 0.25; -0.75; 1.0; 0.0 ] in
        let c = Convergence.create ~estimator:"test" ~players:1 () in
        List.iter (fun x -> Convergence.observe c ~player:0 x) xs;
        let n = float_of_int (List.length xs) in
        let mean = List.fold_left ( +. ) 0.0 xs /. n in
        let var =
          List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs
          /. (n -. 1.0)
        in
        close "mean" mean (Convergence.mean c ~player:0);
        close "variance" var (Convergence.variance c ~player:0));
    t "merge_moments = sequential observe" (fun () ->
        let xs = [ 0.3; -0.2; 0.9; 0.9; -1.0; 0.0; 0.4 ]
        and ys = [ 1.0; -0.5; 0.25 ] in
        let seq = Convergence.create ~estimator:"seq" ~players:1 () in
        List.iter (fun x -> Convergence.observe seq ~player:0 x) (xs @ ys);
        let merged = Convergence.create ~estimator:"mrg" ~players:1 () in
        let feed batch =
          let n = float_of_int (List.length batch) in
          let mean = List.fold_left ( +. ) 0.0 batch /. n in
          let m2 =
            List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 batch
          in
          Convergence.merge_moments merged ~player:0
            ~count:(List.length batch) ~mean ~m2
        in
        feed xs;
        feed ys;
        close "mean" (Convergence.mean seq ~player:0)
          (Convergence.mean merged ~player:0);
        close "variance"
          (Convergence.variance seq ~player:0)
          (Convergence.variance merged ~player:0));
    t "checkpoint envelope never widens" (fun () ->
        let c =
          Convergence.create ~ci:Bernstein ~interval:10 ~estimator:"env"
            ~players:2 ()
        in
        (* a deterministic bounded stream with drifting variance *)
        for i = 1 to 200 do
          let x = Float.of_int ((i * 37 mod 19) - 9) /. 9.0 in
          Convergence.observe c ~player:0 x;
          Convergence.observe c ~player:1 (-.x);
          Convergence.advance c 1
        done;
        Convergence.finish c;
        let ks = Convergence.checkpoints c in
        Alcotest.(check bool) "several checkpoints" true (List.length ks >= 10);
        let rec walk = function
          | a :: (b :: _ as rest) ->
              Alcotest.(check bool) "samples strictly increase" true
                Convergence.(b.k_samples > a.k_samples);
              Alcotest.(check bool) "certified width never widens" true
                Convergence.(b.k_max_half_width <= a.k_max_half_width);
              walk rest
          | _ -> ()
        in
        walk ks;
        close "certified = last checkpoint"
          (Convergence.max_certified_half_width c)
          Convergence.((List.nth ks (List.length ks - 1)).k_max_half_width);
        (* finish is idempotent: no further checkpoints appear *)
        let emitted = Convergence.emitted c in
        Convergence.finish c;
        Alcotest.(check int) "idempotent finish" emitted
          (Convergence.emitted c));
    t "cap bounds the stored stream, not the count" (fun () ->
        let c =
          Convergence.create ~interval:1 ~cap:3 ~estimator:"cap" ~players:1 ()
        in
        for _ = 1 to 10 do
          Convergence.observe c ~player:0 0.5;
          Convergence.advance c 1
        done;
        Alcotest.(check int) "emitted" 10 (Convergence.emitted c);
        Alcotest.(check int) "stored" 3
          (List.length (Convergence.checkpoints c)));
    t "create validates its arguments" (fun () ->
        let bad k = try ignore (k ()); false with Invalid_argument _ -> true in
        Alcotest.(check bool) "players 0" true
          (bad (fun () -> Convergence.create ~estimator:"x" ~players:0 ()));
        Alcotest.(check bool) "interval 0" true
          (bad (fun () ->
               Convergence.create ~interval:0 ~estimator:"x" ~players:1 ()));
        Alcotest.(check bool) "delta 1" true
          (bad (fun () ->
               Convergence.create ~delta:1.0 ~estimator:"x" ~players:1 ()));
        Alcotest.(check bool) "range 0" true
          (bad (fun () ->
               Convergence.create ~range:0.0 ~estimator:"x" ~players:1 ()))) ]

(* ------------------------------------------------------------------ *)
(* Estimator behaviour on fixed instances *)

let with_jobs n k =
  let before = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs before) k

let report_key (r : Sampling.report) =
  ( List.map
      (fun (e : Sampling.estimate) -> (e.variable, e.value, e.half_width))
      r.estimates,
    r.samples_used,
    r.evals )

let estimator_tests =
  [ t "every estimator covers the exact Example 13 values" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(x), R2(x)" in
        let exact, _ = Dichotomy.shapley db q in
        let f = Lineage.lineage_formula db q in
        let vars = List.map fst exact in
        List.iter
          (fun estimator ->
            let r =
              Sampling.shap_estimate ~estimator ~seed:5 ~eps:0.05 ~delta:0.05
                ~vars f
            in
            List.iter
              (fun (e : Sampling.estimate) ->
                let reference =
                  Rat.to_float (List.assoc e.variable exact)
                in
                Alcotest.(check bool)
                  (Printf.sprintf "%s x%d in CI"
                     (Sampling.estimator_name estimator)
                     e.variable)
                  true
                  (Float.abs (e.value -. reference) <= e.half_width))
              r.estimates)
          all_estimators);
    t "truncated = permutation, with fewer evaluations" (fun () ->
        let f = Parser.formula_of_string_exn "(x1 & x2) | (x3 & x4)" in
        let vars = [ 1; 2; 3; 4 ] in
        let run estimator =
          Sampling.shap_estimate ~estimator ~seed:3 ~eps:0.05 ~vars f
        in
        let p = run Sampling.Permutation and tr = run Sampling.Truncated in
        Alcotest.(check bool) "identical estimates" true
          (List.for_all2
             (fun (a : Sampling.estimate) (b : Sampling.estimate) ->
               a.variable = b.variable && a.value = b.value
               && a.half_width = b.half_width)
             p.estimates tr.estimates);
        Alcotest.(check int) "same samples" p.samples_used tr.samples_used;
        Alcotest.(check bool) "truncation saves evals" true
          (tr.evals < p.evals));
    t "jobs 1 and 4 replay bit-identically" (fun () ->
        let f = Parser.formula_of_string_exn "(x1 & x2) | (x3 & x4 & x5)" in
        let vars = [ 1; 2; 3; 4; 5 ] in
        List.iter
          (fun estimator ->
            let run jobs =
              with_jobs jobs (fun () ->
                  report_key
                    (Sampling.shap_estimate ~estimator ~seed:11 ~eps:0.08
                       ~vars f))
            in
            Alcotest.(check bool)
              (Sampling.estimator_name estimator)
              true
              (run 1 = run 4))
          all_estimators);
    t "a deadline stops an unconverged run" (fun () ->
        let f = Parser.formula_of_string_exn "(x1 & x2) | (x3 & x4)" in
        let r =
          Sampling.shap_estimate ~seed:1 ~deadline:1e-6
            ~max_samples:1_000_000 ~vars:[ 1; 2; 3; 4 ] f
        in
        Alcotest.(check bool) "stopped early" true
          (r.samples_used < 1_000_000);
        Alcotest.(check bool) "not converged" false r.converged);
    t "karp-luby streams through a shared monitor" (fun () ->
        let d = [ Vset.of_list [ 1; 2 ]; Vset.of_list [ 3 ] ] in
        let c =
          Convergence.create ~ci:Bernstein ~range:1.0 ~interval:64
            ~estimator:"karp-luby" ~players:1 ()
        in
        let e =
          Karp_luby.count_samples ~monitor:c ~seed:9 ~samples:500
            ~vars:[ 1; 2; 3; 4 ] d
        in
        Convergence.finish c;
        Alcotest.(check int) "every sample observed" 500
          (Convergence.samples c);
        Alcotest.(check bool) "checkpoints emitted" true
          (Convergence.emitted c >= 500 / 64);
        let mean = Convergence.mean c ~player:0 in
        Alcotest.(check bool) "coverage indicator mean in [0,1]" true
          (0.0 <= mean && mean <= 1.0);
        (* #F = 10 over 4 vars: {1,2} covers 4 models, {3} covers 8, overlap 2 *)
        Alcotest.(check bool) "estimate near #F" true
          (Float.abs (e.value -. 10.0) <= 3.0)) ]

(* ------------------------------------------------------------------ *)
(* Statistical properties on random hierarchical instances *)

(* Random instances of the hierarchical Q = R1(x), R2(x): fact values
   drawn from a 3-element domain so matches (and the lineage) vary. *)
let gen_instance =
  let open QCheck.Gen in
  let vals =
    map
      (List.sort_uniq compare)
      (list_size (int_range 1 3) (int_range 1 3))
  in
  map2 (fun r1 r2 -> (r1, r2)) vals vals

let arb_instance =
  QCheck.make
    ~print:(fun (r1, r2) ->
      Printf.sprintf "R1=%s R2=%s"
        (String.concat "," (List.map string_of_int r1))
        (String.concat "," (List.map string_of_int r2)))
    gen_instance

let build_instance (r1, r2) =
  let db = Database.create () in
  Database.declare db "R1" ~kind:Database.Endogenous ~arity:1;
  Database.declare db "R2" ~kind:Database.Endogenous ~arity:1;
  List.iter (fun v -> ignore (Database.insert db "R1" [| Value.int v |])) r1;
  List.iter (fun v -> ignore (Database.insert db "R2" [| Value.int v |])) r2;
  (db, Db_parser.parse_query "R1(x), R2(x)")

let statistical_tests =
  let delta = 0.05 in
  List.map
    (fun estimator ->
      let name = Sampling.estimator_name estimator in
      dtest
        ~seed:(60 + Sampling.(match estimator with
                              | Permutation -> 0 | Truncated -> 1
                              | Antithetic -> 2 | Stratified -> 3))
        ~count:6
        (Printf.sprintf "%s in-CI vs exact dichotomy (hierarchical)" name)
        arb_instance
        (fun inst ->
          let db, q = build_instance inst in
          let exact, solver = Dichotomy.shapley db q in
          assert (solver = Dichotomy.Safe_plan_circuit);
          let f = Lineage.lineage_formula db q in
          let vars = List.map fst exact in
          let r =
            Sampling.shap_estimate ~estimator ~seed:0 ~eps:0.1 ~delta ~vars f
          in
          let n = List.length r.estimates in
          let covered =
            List.length
              (List.filter
                 (fun (e : Sampling.estimate) ->
                   Float.abs
                     (e.value -. Rat.to_float (List.assoc e.variable exact))
                   <= e.half_width)
                 r.estimates)
          in
          float_of_int covered >= (1.0 -. delta) *. float_of_int n))
    all_estimators
  @ [ dtest ~seed:70 ~count:4 "jobs 1 = jobs 4 on random instances"
        arb_instance
        (fun inst ->
          let db, q = build_instance inst in
          let f = Lineage.lineage_formula db q in
          let vars = List.map fst (fst (Dichotomy.shapley db q)) in
          List.for_all
            (fun estimator ->
              let run jobs =
                with_jobs jobs (fun () ->
                    report_key
                      (Sampling.shap_estimate ~estimator ~seed:2
                         ~max_samples:700 ~vars f))
              in
              run 1 = run 4)
            all_estimators) ]

let suite =
  budget_tests @ convergence_tests @ estimator_tests @ statistical_tests
