(** Tests for DIMACS / NNF interchange, weighted model counting,
    provenance semirings, and the cooperative-game module. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let bi = Bigint.of_int
let r = Rat.of_ints
let parse = Parser.formula_of_string_exn

let dimacs_tests =
  [ t "parses a classic instance" (fun () ->
        let inst =
          Dimacs.parse_string
            "c example\np cnf 3 2\n1 -2 0\n2 3 0\n"
        in
        Alcotest.(check int) "vars" 3 inst.Dimacs.num_vars;
        Alcotest.(check int) "clauses" 2 (List.length inst.Dimacs.clauses);
        Alcotest.check bigint "count"
          (Brute.count ~vars:(Dimacs.variables inst) (Dimacs.to_formula inst))
          (Dpll.count_universe ~vars:(Dimacs.variables inst)
             (Dimacs.to_formula inst)));
    t "multi-line clauses and comments" (fun () ->
        let inst = Dimacs.parse_string "p cnf 2 1\nc mid comment\n1\n2 0\n" in
        Alcotest.(check int) "one clause" 1 (List.length inst.Dimacs.clauses));
    t "weight lines" (fun () ->
        let inst =
          Dimacs.parse_string
            "p cnf 2 1\nc p weight 1 1/3 0\nc p weight 2 0.25 0\n1 2 0\n"
        in
        Alcotest.check rat "w1" (r 1 3) (List.assoc 1 inst.Dimacs.weights);
        Alcotest.check rat "w2" (r 1 4) (List.assoc 2 inst.Dimacs.weights));
    t "tautological clauses dropped" (fun () ->
        let inst = Dimacs.parse_string "p cnf 1 1\n1 -1 0\n" in
        Alcotest.(check int) "dropped" 0 (List.length inst.Dimacs.clauses));
    t "weight validation" (fun () ->
        let contains ~sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        let expect_err ~sub s =
          match Dimacs.parse_string s with
          | _ -> Alcotest.failf "accepted %S" s
          | exception Invalid_argument m ->
            if not (contains ~sub m) then
              Alcotest.failf "error %S does not mention %S" m sub
        in
        (* out-of-range variable, with the declaring line's number *)
        expect_err ~sub:"out of range"
          "p cnf 2 1\nc p weight 5 1/2 0\n1 2 0\n";
        expect_err ~sub:"line 2" "p cnf 2 1\nc p weight 5 1/2 0\n1 2 0\n";
        (* duplicate declaration, reported at the later line *)
        expect_err ~sub:"duplicate"
          "p cnf 2 1\nc p weight 1 1/2 0\nc p weight 1 1/3 0\n1 2 0\n";
        expect_err ~sub:"line 3"
          "p cnf 2 1\nc p weight 1 1/2 0\nc p weight 1 1/3 0\n1 2 0\n";
        (* 0 is not a literal *)
        expect_err ~sub:"weight literal" "p cnf 2 1\nc p weight 0 1/2 0\n1 2 0\n";
        (* negative-literal weights remain implied, not errors *)
        let inst =
          Dimacs.parse_string "p cnf 2 1\nc p weight -1 1/2 0\n1 2 0\n"
        in
        Alcotest.(check int) "implied" 0 (List.length inst.Dimacs.weights));
    t "errors" (fun () ->
        List.iter
          (fun s ->
             Alcotest.(check bool) s true
               (try
                  ignore (Dimacs.parse_string s);
                  false
                with Invalid_argument _ -> true))
          [ ""; "1 2 0\n"; "p cnf x 1\n"; "p cnf 2 1\n1 2\n" ]);
    t "print/parse roundtrip" (fun () ->
        let inst =
          Dimacs.parse_string "p cnf 4 3\n1 -2 0\n3 0\n-1 -3 4 0\n"
        in
        let inst' = Dimacs.parse_string (Dimacs.print inst) in
        Alcotest.(check bool) "same formula" true
          (Semantics.equivalent (Dimacs.to_formula inst)
             (Dimacs.to_formula inst')));
    t "declared universe counts unmentioned variables" (fun () ->
        let inst = Dimacs.parse_string "p cnf 3 1\n1 0\n" in
        Alcotest.check bigint "4" (bi 4)
          (Dpll.count_universe ~vars:(Dimacs.variables inst)
             (Dimacs.to_formula inst)))
  ]

let nnf_tests =
  [ t "export/import roundtrip on example 2" (fun () ->
        (* OBDD-derived circuits use only deterministic gates, the
           fragment NNF can express *)
        let m = Obdd.create_manager ~order:example2_vars in
        let c = Obdd.to_circuit m (Obdd.of_formula m example2_formula) in
        let c' = Nnf_io.import (Nnf_io.export c ~num_vars:3) in
        Alcotest.(check bool) "equiv" true
          (Circuit.equivalent_formula ~max_vars:5 c' example2_formula);
        Alcotest.check bigint "same count"
          (Count.count ~vars:example2_vars c)
          (Count.count ~vars:example2_vars c'));
    t "rejects disjoint OR gates" (fun () ->
        let g = Circuit.cor_disj [ Circuit.cvar 1; Circuit.cvar 2 ] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Nnf_io.export g ~num_vars:2);
             false
           with Invalid_argument _ -> true));
    t "import rejects garbage" (fun () ->
        List.iter
          (fun s ->
             Alcotest.(check bool) s true
               (try
                  ignore (Nnf_io.import s);
                  false
                with Invalid_argument _ -> true))
          [ ""; "bogus\n"; "nnf 1 0 1\nX 3\n"; "nnf 2 1 1\nL 1\nA 1 5\n" ]);
    qtest "roundtrip preserves counts and Shapley" ~count:40
      (arb_formula ~nvars:5 ~depth:4)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let m = Obdd.create_manager ~order:vars in
         let c = Obdd.to_circuit m (Obdd.of_formula m f) in
         let c' =
           Nnf_io.import
             (Nnf_io.export c ~num_vars:(List.length vars))
         in
         Kvec.equal (Count.count_by_size ~vars c) (Count.count_by_size ~vars c')
         && List.for_all2
              (fun (i, x) (j, y) -> i = j && Rat.equal x y)
              (Circuit_shapley.shap_direct ~vars c)
              (Circuit_shapley.shap_direct ~vars c'))
  ]

let wmc_tests =
  [ t "uniform half = count / 2^n over vars f" (fun () ->
        Alcotest.check rat "3/8" (r 3 8)
          (Dpll.wmc ~weights:(fun _ -> r 1 2) example2_formula));
    t "weights of eliminated variables integrate out" (fun () ->
        (* x1 | !x1 & x2 simplifies paths; P = p1 + (1-p1) p2 *)
        let f = parse "x1 | !x1 & x2" in
        let w v = if v = 1 then r 1 3 else r 1 5 in
        Alcotest.check rat "p" (r 7 15) (Dpll.wmc ~weights:w f));
    qtest "dpll wmc = circuit probability" ~count:60
      (arb_formula ~nvars:6 ~depth:5)
      (fun f ->
         let w v = r 1 (v + 2) in
         Rat.equal (Dpll.wmc ~weights:w f)
           (Prob.probability ~weights:w (Compile.compile f)))
  ]

let provenance_tests =
  [ t "boolean semiring evaluation = lineage" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(x), R2(x)" in
        let f =
          Provenance.eval (module Provenance.Boolean_semiring) db q
            ~annotate:Formula.var
        in
        Alcotest.(check bool) "equiv" true
          (Semantics.equivalent f (Lineage.lineage_formula db q)));
    t "derivation counting" (fun () ->
        let db = example13_db () in
        Alcotest.check bigint "2 derivations" (bi 2)
          (Provenance.derivation_count db
             (Db_parser.parse_query "R1(x), R2(x)"));
        Alcotest.check bigint "4 derivations (cross product)" (bi 4)
          (Provenance.derivation_count db
             (Db_parser.parse_query "R1(x), R2(y)")));
    t "provenance polynomial of example 13" (fun () ->
        let db = example13_db () in
        let p =
          Provenance.provenance_polynomial db
            (Db_parser.parse_query "R1(x), R2(x)")
        in
        (* x1 x3 + x2 x4 *)
        Alcotest.(check int) "2 monomials" 2
          (List.length (Provenance.Polynomial.monomials p)));
    t "self-join exponents" (fun () ->
        let db = Database.create () in
        Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        let p =
          Provenance.provenance_polynomial db
            (Db_parser.parse_query "R(x), R(y)")
        in
        (* single derivation using the tuple twice: x1^2 *)
        Alcotest.(check bool) "x1^2" true
          (Provenance.Polynomial.monomials p = [ ([ (1, 2) ], 1) ]));
    t "tropical semiring gives cheapest derivation" (fun () ->
        let db = example13_db () in
        let q = Db_parser.parse_query "R1(x), R2(x)" in
        (* costs: var v costs v *)
        let cost =
          Provenance.eval (module Provenance.Tropical) db q
            ~annotate:(fun v -> Provenance.Tropical.of_int v)
        in
        (* derivations cost 1+3=4 and 2+4=6 *)
        Alcotest.(check (option int)) "4" (Some 4)
          (Provenance.Tropical.to_int_opt cost));
    t "no derivation = semiring zero" (fun () ->
        let db = Database.create () in
        Stretch.declare_q0_schema db;
        ignore (Database.insert db "R" [| Value.int 1 |]);
        Alcotest.check bigint "0" Bigint.zero
          (Provenance.derivation_count db (Stretch.q0 ())));
    qtest "factorization: specializing N[X] commutes with evaluation"
      ~count:20
      (QCheck.make QCheck.Gen.(int_range 0 9999))
      (fun seed ->
         let db, q = random_q0_db ~a:2 ~b:2 ~density:0.7 ~seed in
         let p = Provenance.provenance_polynomial db q in
         (* evaluate the polynomial in the counting semiring with weights
            v -> v, vs direct annotated evaluation *)
         let h v = Bigint.of_int v in
         let lhs =
           Provenance.Polynomial.eval (module Provenance.Counting) h p
         in
         let rhs =
           Provenance.eval (module Provenance.Counting) db q ~annotate:h
         in
         Bigint.equal lhs rhs)
  ]

let game_tests =
  [ t "boolean game reproduces Naive" (fun () ->
        let g = Game.of_formula ~vars:example2_vars example2_formula in
        check_shap "equal"
          (Naive.shap_subsets ~vars:example2_vars example2_formula)
          (Game.shapley g));
    t "glove game" (fun () ->
        (* players 1,2 hold left gloves, 3 a right glove; a pair is worth 1 *)
        let wealth s =
          let lefts =
            Vset.cardinal (Vset.inter s (Vset.of_list [ 1; 2 ]))
          in
          let rights = if Vset.mem 3 s then 1 else 0 in
          Rat.of_int (min lefts rights)
        in
        let g = Game.make [ 1; 2; 3 ] wealth in
        let shap = Game.shapley g in
        Alcotest.check rat "right glove worth 2/3" (r 2 3) (List.assoc 3 shap);
        Alcotest.check rat "left gloves 1/6 each" (r 1 6) (List.assoc 1 shap));
    t "axioms on the glove game" (fun () ->
        let wealth s =
          let lefts = Vset.cardinal (Vset.inter s (Vset.of_list [ 1; 2 ])) in
          let rights = if Vset.mem 3 s then 1 else 0 in
          Rat.of_int (min lefts rights)
        in
        let g = Game.make [ 1; 2; 3 ] wealth in
        Alcotest.(check bool) "efficiency" true (Game.efficiency g);
        Alcotest.(check bool) "symmetry 1~2" true (Game.symmetry g 1 2);
        Alcotest.(check bool) "dummy (vacuous)" true (Game.dummy g 1));
    t "player cap" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Game.make (List.init 11 succ) (fun _ -> Rat.zero));
             false
           with Invalid_argument _ -> true));
    qtest "axioms hold on random boolean games" ~count:30
      (arb_formula ~nvars:4 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (List.length vars >= 2);
         let g = Game.of_formula ~vars f in
         Game.efficiency g
         && List.for_all (fun i -> Game.dummy g i) vars
         && Game.symmetry g (List.nth vars 0) (List.nth vars 1));
    qtest "linearity" ~count:20
      (QCheck.pair (arb_formula ~nvars:3 ~depth:3) (arb_formula ~nvars:3 ~depth:3))
      (fun (f, gf) ->
         let vars = [ 1; 2; 3 ] in
         QCheck.assume
           (Vset.subset (Formula.vars f) (Vset.of_list vars)
            && Vset.subset (Formula.vars gf) (Vset.of_list vars));
         Game.linearity (Game.of_formula ~vars f) (Game.of_formula ~vars gf));
    qtest "game banzhaf = power-indices banzhaf" ~count:25
      (arb_formula ~nvars:4 ~depth:3)
      (fun f ->
         let vars = Vset.elements (Formula.vars f) in
         QCheck.assume (vars <> []);
         let a = Game.banzhaf (Game.of_formula ~vars f) in
         let b = Power_indices.banzhaf ~vars f in
         List.for_all2 (fun (i, x) (j, y) -> i = j && Rat.equal x y) a b)
  ]

let suite = dimacs_tests @ nnf_tests @ wmc_tests @ provenance_tests @ game_tests
