(** Unit and property tests for the bignum substrate. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f
let bi = Bigint.of_int
let bs = Bigint.of_string

let unit_tests =
  [ t "zero" (fun () ->
        Alcotest.check bigint "0" Bigint.zero (bi 0);
        Alcotest.(check bool) "is_zero" true (Bigint.is_zero Bigint.zero);
        Alcotest.(check int) "sign" 0 (Bigint.sign Bigint.zero));
    t "of_int/to_int roundtrip extremes" (fun () ->
        List.iter
          (fun n -> Alcotest.(check int) "rt" n (Bigint.to_int (bi n)))
          [ 0; 1; -1; max_int; min_int; max_int - 1; min_int + 1; 32768; -32768 ]);
    t "to_int out of range" (fun () ->
        let huge = Bigint.pow (bi 2) 100 in
        Alcotest.(check (option int)) "none" None (Bigint.to_int_opt huge);
        Alcotest.(check (option int))
          "min_int fits" (Some min_int)
          (Bigint.to_int_opt (bi min_int)));
    t "string roundtrip" (fun () ->
        List.iter
          (fun s -> Alcotest.(check string) s s (Bigint.to_string (bs s)))
          [ "0"; "1"; "-1"; "123456789012345678901234567890";
            "-999999999999999999999999"; "1000000000000000000000000000001" ]);
    t "of_string rejects garbage" (fun () ->
        List.iter
          (fun s ->
             Alcotest.check_raises "invalid" (Invalid_argument
               (match s with
                | "" -> "Bigint.of_string: empty"
                | "-" -> "Bigint.of_string: no digits"
                | _ -> "Bigint.of_string: bad digit"))
               (fun () -> ignore (bs s)))
          [ ""; "-"; "12a"; "1 2" ]);
    t "add carries across limbs" (fun () ->
        Alcotest.check bigint "2^60"
          (Bigint.pow (bi 2) 60)
          (Bigint.add (bi (1 lsl 59)) (bi (1 lsl 59))));
    t "mul known value" (fun () ->
        Alcotest.check bigint "square"
          (bs "15241578753238836750495351562536198787501905199875019052100")
          (Bigint.mul
             (bs "123456789012345678901234567890")
             (bs "123456789012345678901234567890")));
    t "divmod truncates toward zero" (fun () ->
        let check a b q r =
          let q', r' = Bigint.divmod (bi a) (bi b) in
          Alcotest.check bigint "q" (bi q) q';
          Alcotest.check bigint "r" (bi r) r'
        in
        check 7 2 3 1;
        check (-7) 2 (-3) (-1);
        check 7 (-2) (-3) 1;
        check (-7) (-2) 3 (-1));
    t "division by zero raises" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Bigint.divmod Bigint.one Bigint.zero)));
    t "pow" (fun () ->
        Alcotest.check bigint "2^100"
          (bs "1267650600228229401496703205376")
          (Bigint.pow (bi 2) 100);
        Alcotest.check bigint "x^0" Bigint.one (Bigint.pow (bi 42) 0);
        Alcotest.check bigint "(-3)^3" (bi (-27)) (Bigint.pow (bi (-3)) 3));
    t "pow rejects negative exponent" (fun () ->
        Alcotest.check_raises "neg"
          (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
              ignore (Bigint.pow (bi 2) (-1))));
    t "gcd" (fun () ->
        Alcotest.check bigint "48,36" (bi 12) (Bigint.gcd (bi 48) (bi 36));
        Alcotest.check bigint "0,0" Bigint.zero (Bigint.gcd Bigint.zero Bigint.zero);
        Alcotest.check bigint "neg" (bi 6) (Bigint.gcd (bi (-12)) (bi 18)));
    t "two_pow_minus_one" (fun () ->
        Alcotest.check bigint "l=0" Bigint.zero (Bigint.two_pow_minus_one 0);
        Alcotest.check bigint "l=5" (bi 31) (Bigint.two_pow_minus_one 5);
        Alcotest.check bigint "l=70"
          (Bigint.pred (Bigint.pow (bi 2) 70))
          (Bigint.two_pow_minus_one 70));
    t "bit_length" (fun () ->
        Alcotest.(check int) "0" 0 (Bigint.bit_length Bigint.zero);
        Alcotest.(check int) "1" 1 (Bigint.bit_length Bigint.one);
        Alcotest.(check int) "2^64" 65
          (Bigint.bit_length (Bigint.pow (bi 2) 64)));
    t "mul_int matches mul" (fun () ->
        let x = bs "987654321987654321987654321" in
        Alcotest.check bigint "pos" (Bigint.mul x (bi 12345))
          (Bigint.mul_int x 12345);
        Alcotest.check bigint "neg" (Bigint.mul x (bi (-7)))
          (Bigint.mul_int x (-7)));
    t "to_float" (fun () ->
        Alcotest.(check (float 1e-6)) "1e3" 1000.0 (Bigint.to_float (bi 1000));
        Alcotest.(check (float 1e6)) "2^40"
          (Float.pow 2.0 40.0)
          (Bigint.to_float (Bigint.pow (bi 2) 40)));
    t "to_float huge magnitude is monotone-ish" (fun () ->
        let x = Bigint.pow (bi 10) 300 in
        let f = Bigint.to_float x in
        Alcotest.(check bool) "finite" true (Float.is_finite f);
        Alcotest.(check (float 1e-9)) "log10" 300.0 (Float.log10 f);
        Alcotest.(check bool) "overflow to inf eventually" true
          (Bigint.to_float (Bigint.pow (bi 10) 4000) = Float.infinity));
    t "mul_int min_int regression" (fun () ->
        (* Stdlib.abs min_int is still negative; the old single-limb path
           scrambled the limbs.  Expected values via the general mul. *)
        let cases = [ bi 3; bi (-1); bs "987654321987654321987654321";
                      Bigint.neg (bs "340282366920938463463374607431768211456") ] in
        List.iter
          (fun x ->
             Alcotest.check bigint
               (Bigint.to_string x ^ " * min_int")
               (Bigint.mul x (bi min_int))
               (Bigint.mul_int x min_int))
          cases;
        Alcotest.check bigint "round trip /"
          (bs "987654321987654321987654321")
          (Bigint.div (Bigint.mul_int (bs "987654321987654321987654321") min_int)
             (bi min_int)))
  ]

(* Property tests against the native-int oracle (all operands chosen so
   that the reference computation cannot overflow). *)
let property_tests =
  let pair = QCheck.pair arb_small_int arb_small_int in
  [ qtest "add matches int oracle" pair (fun (a, b) ->
        (* avoid overflow of the oracle *)
        QCheck.assume (not (a > 0 && b > max_int - a));
        QCheck.assume (not (a < 0 && b < min_int - a));
        Bigint.equal (Bigint.add (bi a) (bi b)) (bi (a + b)));
    qtest "mul matches int oracle"
      QCheck.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
      (fun (a, b) -> Bigint.equal (Bigint.mul (bi a) (bi b)) (bi (a * b)));
    qtest "divmod matches int oracle" pair (fun (a, b) ->
        QCheck.assume (b <> 0);
        let q, r = Bigint.divmod (bi a) (bi b) in
        Bigint.equal q (bi (a / b)) && Bigint.equal r (bi (a mod b)));
    qtest "string roundtrip" arb_big (fun x ->
        Bigint.equal x (Bigint.of_string (Bigint.to_string x)));
    qtest "add commutative" (QCheck.pair arb_big arb_big) (fun (a, b) ->
        Bigint.equal (Bigint.add a b) (Bigint.add b a));
    qtest "mul commutative" (QCheck.pair arb_big arb_big) (fun (a, b) ->
        Bigint.equal (Bigint.mul a b) (Bigint.mul b a));
    qtest "mul distributes over add"
      (QCheck.triple arb_big arb_big arb_big)
      (fun (a, b, c) ->
         Bigint.equal
           (Bigint.mul a (Bigint.add b c))
           (Bigint.add (Bigint.mul a b) (Bigint.mul a c)));
    qtest "sub then add is identity" (QCheck.pair arb_big arb_big)
      (fun (a, b) -> Bigint.equal a (Bigint.add (Bigint.sub a b) b));
    qtest "divmod reconstructs" (QCheck.pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (Bigint.is_zero b));
        let q, r = Bigint.divmod a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
        && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a));
    qtest "gcd divides both" (QCheck.pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (Bigint.is_zero a) || not (Bigint.is_zero b));
        let g = Bigint.gcd a b in
        Bigint.is_zero (Bigint.rem a g) && Bigint.is_zero (Bigint.rem b g));
    qtest "compare antisymmetric" (QCheck.pair arb_big arb_big)
      (fun (a, b) -> Bigint.compare a b = -Bigint.compare b a);
    qtest "bit_length vs doubling" arb_big (fun a ->
        QCheck.assume (not (Bigint.is_zero a));
        Bigint.bit_length (Bigint.mul_int a 2) = Bigint.bit_length a + 1)
  ]

(* Native ints clustered at the promotion boundary (min_int/max_int). *)
let arb_boundary_int =
  QCheck.make ~print:string_of_int
    QCheck.Gen.(
      frequency
        [ (2, oneofl [ min_int; min_int + 1; max_int; max_int - 1; 0; 1; -1 ]);
          (3, map (fun k -> min_int + k) (int_range 0 1000));
          (3, map (fun k -> max_int - k) (int_range 0 1000));
          (2, int) ])

(* The representation is canonical exactly when the unboxed tier is used iff
   the value fits a native int; [compare] is value-based, so this check does
   not depend on the tier. *)
let canonical v =
  let fits =
    Bigint.leq (Bigint.abs v) (Bigint.of_int max_int)
    || Bigint.equal v (Bigint.of_int min_int)
  in
  Bigint.Internal.is_small v = fits

let boundary_tests =
  let pair = QCheck.pair arb_boundary_int arb_boundary_int in
  [ qtest "mul_int matches mul at boundary ints"
      (QCheck.pair arb_big arb_boundary_int)
      (fun (x, k) -> Bigint.equal (Bigint.mul_int x k) (Bigint.mul x (bi k)));
    qtest "add/sub/mul stay canonical at the boundary" pair (fun (a, b) ->
        List.for_all canonical
          [ Bigint.add (bi a) (bi b); Bigint.sub (bi a) (bi b);
            Bigint.mul (bi a) (bi b); Bigint.neg (bi a) ]);
    qtest "divmod reconstructs at the boundary" pair (fun (a, b) ->
        QCheck.assume (b <> 0);
        let q, r = Bigint.divmod (bi a) (bi b) in
        canonical q && canonical r
        && Bigint.equal (bi a) (Bigint.add (Bigint.mul q (bi b)) r));
    qtest "add matches a two-word oracle at the boundary" pair (fun (a, b) ->
        (* Split-add oracle: (a + b) computed via halves can't overflow. *)
        let half x = (x asr 1, x land 1) in
        let ha, la = half a and hb, lb = half b in
        let expect =
          Bigint.add
            (Bigint.mul_int (Bigint.add_int (bi ha) hb) 2)
            (bi (la + lb))
        in
        Bigint.equal expect (Bigint.add (bi a) (bi b)))
  ]

let suite = unit_tests @ property_tests @ boundary_tests
