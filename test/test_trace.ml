(** Trace-subsystem tests.

    - Golden event skeleton: tracing a Lemma 3.3 / Lemma 3.2 pipeline
      run yields the phases in proof order and exactly the oracle events
      the lemmas' call budgets allow — [n + 1] count-oracle events at
      arities [1..n+1] (each tagged [lemma=3.3]), [(n + 1) + n²] for the
      full Shapley chain — in exact agreement with the [Obs] ledger.
    - Serialization: JSONL round-trips structurally; the Chrome
      [trace_event] export is valid JSON with balanced B/E span pairs.
    - Bounds: the trace stream and both Obs raw ledgers cap their
      memory, keep exact aggregates past the cap and count drops.
    - Clocks: negative durations (non-monotone [Unix.gettimeofday]) and
      pre-start timestamps clamp to [0]; non-finite floats serialize as
      valid JSON. *)

open Helpers

let t name f = Alcotest.test_case name `Quick f

(* Run [f] with the Obs ledger enabled and a trace recording; always
   restore the disabled defaults so other suites are unaffected. *)
let with_traced ?cap f =
  Obs.reset ();
  Obs.enable ();
  Trace.start ?cap ();
  Fun.protect
    ~finally:(fun () ->
      Trace.clear ();
      Obs.disable ();
      Obs.reset ())
    f

let events_of_kind k evs = List.filter (fun e -> e.Trace.kind = k) evs

let attr name e = List.assoc_opt name e.Trace.attrs

let int_attr name e =
  match attr name e with
  | Some (Trace.Int i) -> i
  | _ -> Alcotest.failf "event %s lacks int attr %s" e.Trace.name name

(* ------------------------------------------------------------------ *)
(* Golden skeletons *)

let lemma33_skeleton n =
  let st = Random.State.make [| 333; n |] in
  let f =
    QCheck.Gen.generate1 ~rand:st (Helpers.gen_formula ~nvars:n ~depth:n)
  in
  let vars = List.init n succ in
  with_traced (fun () ->
      let _ =
        Pipeline.kcounts_via_count_oracle ~oracle:Pipeline.dpll_count_oracle
          ~vars f
      in
      let evs = Trace.events () in
      (* chronology: seq is 0..N-1 in order, depths non-negative *)
      List.iteri
        (fun i e ->
           Alcotest.(check int) "seq contiguous" i e.Trace.seq;
           Alcotest.(check bool) "depth >= 0" true (e.Trace.depth >= 0))
        evs;
      (* spans balance *)
      Alcotest.(check int) "span begin/end balance"
        (List.length (events_of_kind Trace.Span_begin evs))
        (List.length (events_of_kind Trace.Span_end evs));
      (* the proof's phases, in proof order *)
      let phases =
        List.map (fun e -> e.Trace.name) (events_of_kind Trace.Phase evs)
      in
      Alcotest.(check (list string))
        "consult then solve"
        [ "lemma3.3.consult"; "lemma3.3.solve" ]
        phases;
      (* exactly n+1 oracle events at arities 1..n+1, each owning its
         lemma tag and a positive duration *)
      let oracles = events_of_kind Trace.Oracle evs in
      Alcotest.(check int) "n+1 oracle events" (n + 1) (List.length oracles);
      Alcotest.(check (list int))
        "arities 1..n+1"
        (List.init (n + 1) succ)
        (List.sort compare (List.map (int_attr "l") oracles));
      List.iter
        (fun e ->
           Alcotest.(check string) "oracle name" "dpll" e.Trace.name;
           Alcotest.(check (option string))
             "lemma tag"
             (Some "3.3")
             (match attr "lemma" e with
              | Some (Trace.Str s) -> Some s
              | _ -> None);
           Alcotest.(check int) "n = n·l" (n * int_attr "l" e) (int_attr "n" e);
           match e.Trace.dur with
           | Some d -> Alcotest.(check bool) "dur >= 0" true (d >= 0.0)
           | None -> Alcotest.fail "oracle event lacks a duration")
        oracles;
      (* the trace agrees with the Obs ledger *)
      Alcotest.(check int) "trace = ledger" (Obs.call_count ())
        (List.length oracles))

let lemma32_skeleton n =
  let st = Random.State.make [| 322; n |] in
  let f =
    QCheck.Gen.generate1 ~rand:st (Helpers.gen_formula ~nvars:n ~depth:n)
  in
  let vars = List.init n succ in
  with_traced (fun () ->
      let _ =
        Pipeline.shap_via_count_oracle ~oracle:Pipeline.dpll_count_oracle
          ~vars f
      in
      let evs = Trace.events () in
      let oracles = events_of_kind Trace.Oracle evs in
      (* Theorem 3.1's budget: n+1 calls for #_* of the copy, then n
         zapped instances of n+1... minus the shared solve — the paper's
         (n+1) + n² total, in the stream and in the ledger alike *)
      Alcotest.(check int) "(n+1) + n^2 oracle events"
        ((n + 1) + (n * n))
        (List.length oracles);
      Alcotest.(check int) "trace = ledger" (Obs.call_count ())
        (List.length oracles);
      let phases =
        List.map (fun e -> e.Trace.name) (events_of_kind Trace.Phase evs)
      in
      (* the full-kcounts phase precedes every drop phase; one drop per
         variable *)
      (match phases with
       | "lemma3.2.full" :: rest ->
         Alcotest.(check int) "n drop phases" n
           (List.length (List.filter (( = ) "lemma3.2.drop") rest))
       | _ -> Alcotest.fail "first phase is not lemma3.2.full");
      (* every drop phase names the dropped variable *)
      let dropped =
        List.filter_map
          (fun e ->
             if e.Trace.kind = Trace.Phase && e.Trace.name = "lemma3.2.drop"
             then Some (int_attr "i" e)
             else None)
          evs
      in
      Alcotest.(check (list int)) "drops cover the universe" vars
        (List.sort compare dropped))

(* The PQE route shares the Lemma 3.2 core, so its trace carries the
   same phase skeleton: one full phase, then one drop phase per
   variable, over (n+1) + n² probability-oracle events (the full
   kcounts take n+1 θ-points, each dropped formula n). *)
let pqe_skeleton n =
  let st = Random.State.make [| 313; n |] in
  let f =
    QCheck.Gen.generate1 ~rand:st (Helpers.gen_formula ~nvars:n ~depth:n)
  in
  let vars = List.init n succ in
  with_traced (fun () ->
      let _ =
        Pipeline.shap_via_pqe_oracle ~oracle:Pipeline.pqe_circuit_oracle
          ~vars f
      in
      let evs = Trace.events () in
      let oracles = events_of_kind Trace.Oracle evs in
      Alcotest.(check int) "(n+1) + n^2 oracle events"
        ((n + 1) + (n * n))
        (List.length oracles);
      List.iter
        (fun e ->
           Alcotest.(check string) "oracle name" "compiled-circuit"
             e.Trace.name)
        oracles;
      Alcotest.(check int) "trace = ledger" (Obs.call_count ())
        (List.length oracles);
      let phases =
        List.map (fun e -> e.Trace.name) (events_of_kind Trace.Phase evs)
      in
      (match phases with
       | "lemma3.2.full" :: rest ->
         Alcotest.(check int) "n drop phases" n
           (List.length (List.filter (( = ) "lemma3.2.drop") rest))
       | _ -> Alcotest.fail "first phase is not lemma3.2.full");
      let dropped =
        List.filter_map
          (fun e ->
             if e.Trace.kind = Trace.Phase && e.Trace.name = "lemma3.2.drop"
             then Some (int_attr "i" e)
             else None)
          evs
      in
      Alcotest.(check (list int)) "drops cover the universe" vars
        (List.sort compare dropped))

let skeleton_tests =
  List.map
    (fun n -> t (Printf.sprintf "Lemma 3.3 skeleton, n = %d" n) (fun () ->
         lemma33_skeleton n))
    [ 2; 3; 4 ]
  @ List.map
      (fun n -> t (Printf.sprintf "Lemma 3.2 skeleton, n = %d" n) (fun () ->
           lemma32_skeleton n))
      [ 2; 3 ]
  @ List.map
      (fun n -> t (Printf.sprintf "PQE route skeleton, n = %d" n) (fun () ->
           pqe_skeleton n))
      [ 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Gating: tracing rides on the Obs instrumentation, so a recording
   trace sees nothing while Obs is disabled; and with tracing off the
   instrumented paths leave no stream behind. *)

let gating_tests =
  [ t "no events while Obs is disabled" (fun () ->
        Obs.reset ();
        Obs.disable ();
        Trace.start ();
        Fun.protect ~finally:Trace.clear (fun () ->
            let _ =
              Pipeline.kcounts_via_count_oracle
                ~oracle:Pipeline.dpll_count_oracle ~vars:[ 1; 2 ]
                (Parser.formula_of_string_exn "x1 & x2")
            in
            Alcotest.(check int) "empty stream" 0
              (List.length (Trace.events ()))));
    t "no recording, no stream" (fun () ->
        Obs.reset ();
        Obs.enable ();
        Fun.protect
          ~finally:(fun () ->
            Obs.disable ();
            Obs.reset ())
          (fun () ->
             Trace.clear ();
             let _ =
               Pipeline.kcounts_via_count_oracle
                 ~oracle:Pipeline.dpll_count_oracle ~vars:[ 1; 2 ]
                 (Parser.formula_of_string_exn "x1 | x2")
             in
             Alcotest.(check bool) "not recording" false (Trace.recording ());
             Alcotest.(check int) "empty stream" 0
               (List.length (Trace.events ()));
             (* the ledger still filled up *)
             Alcotest.(check int) "ledger saw the calls" 3
               (Obs.call_count ())));
    t "kind names round-trip" (fun () ->
        List.iter
          (fun k ->
             Alcotest.(check bool) "kind_of_name inverts kind_name" true
               (Trace.kind_of_name (Trace.kind_name k) = Some k))
          [ Trace.Span_begin; Trace.Span_end; Trace.Oracle; Trace.Subst;
            Trace.Phase; Trace.Counter ];
        Alcotest.(check bool) "unknown kind rejected" true
          (Trace.kind_of_name "nonsense" = None)) ]

(* ------------------------------------------------------------------ *)
(* Bounds: the stream and both raw ledgers cap; aggregates stay exact *)

let bound_tests =
  [ t "trace stream caps and counts drops" (fun () ->
        with_traced ~cap:10 (fun () ->
            for i = 1 to 25 do
              Trace.phase (Printf.sprintf "p%d" i)
            done;
            Alcotest.(check int) "stored" 10 (List.length (Trace.events ()));
            Alcotest.(check int) "emitted" 25 (Trace.emitted ());
            Alcotest.(check int) "dropped" 15 (Trace.dropped ());
            (* the kept prefix is the chronological head *)
            Alcotest.(check string) "first kept" "p1"
              (List.hd (Trace.events ())).Trace.name));
    t "call ledger caps, aggregates stay exact" (fun () ->
        Obs.reset ();
        Obs.enable ();
        let old_cap = Obs.ledger_cap () in
        Obs.set_ledger_cap 8;
        Fun.protect
          ~finally:(fun () ->
            Obs.set_ledger_cap old_cap;
            Obs.disable ();
            Obs.reset ())
          (fun () ->
             for i = 1 to 20 do
               Obs.record ~oracle:"o" ~n:i ~arity:1 ~size:i ~seconds:0.001 ()
             done;
             Alcotest.(check int) "raw ledger capped" 8
               (List.length (Obs.calls ()));
             Alcotest.(check int) "dropped counted" 12 (Obs.dropped_calls ());
             Alcotest.(check int) "call_count exact past the cap" 20
               (Obs.call_count ());
             match Obs.aggregate () with
             | [ ("o", a) ] ->
               Alcotest.(check int) "aggregate calls exact" 20 a.Obs.a_calls;
               Alcotest.(check int) "aggregate n_max exact" 20 a.Obs.a_n_max
             | _ -> Alcotest.fail "expected one aggregate"));
    t "subst ledger caps, aggregates stay exact" (fun () ->
        Obs.reset ();
        Obs.enable ();
        let old_cap = Obs.ledger_cap () in
        Obs.set_ledger_cap 4;
        Fun.protect
          ~finally:(fun () ->
            Obs.set_ledger_cap old_cap;
            Obs.disable ();
            Obs.reset ())
          (fun () ->
             for i = 1 to 10 do
               Obs.record_subst ~width:2 ~kind:"formula.or" ~pre:i
                 ~post:(2 * i) ~fresh:i ()
             done;
             Alcotest.(check int) "raw ledger capped" 4
               (List.length (Obs.substs ()));
             Alcotest.(check int) "dropped counted" 6 (Obs.dropped_substs ()))) ]

(* ------------------------------------------------------------------ *)
(* Clock clamps and non-finite floats *)

let clamp_tests =
  [ t "negative oracle seconds clamp to 0" (fun () ->
        Obs.reset ();
        Obs.enable ();
        Fun.protect
          ~finally:(fun () ->
            Obs.disable ();
            Obs.reset ())
          (fun () ->
             Obs.record ~oracle:"o" ~n:1 ~seconds:(-5.0) ();
             match Obs.calls () with
             | [ c ] ->
               Alcotest.(check (float 0.0)) "clamped" 0.0 c.Obs.call_seconds
             | _ -> Alcotest.fail "expected one call"));
    t "pre-start timestamps clamp to 0" (fun () ->
        with_traced (fun () ->
            (* the Unix epoch is long before Trace.start's time zero *)
            Trace.emit ~at:0.0 ~kind:Trace.Phase "past";
            match Trace.events () with
            | [ e ] -> Alcotest.(check (float 0.0)) "clamped" 0.0 e.Trace.at
            | _ -> Alcotest.fail "expected one event"));
    t "json_float emits valid JSON for non-finite values" (fun () ->
        Alcotest.(check string) "nan" "null" (Obs.json_float Float.nan);
        Alcotest.(check string) "inf" "1.0e308"
          (Obs.json_float Float.infinity);
        Alcotest.(check string) "-inf" "-1.0e308"
          (Obs.json_float Float.neg_infinity);
        match Tiny_json.parse_opt (Obs.json_float 1.5) with
        | Some (Tiny_json.Float f) ->
          Alcotest.(check (float 0.0)) "finite round-trip" 1.5 f
        | _ -> Alcotest.fail "finite float did not parse");
    t "non-finite event payloads still export as JSON" (fun () ->
        let e =
          { Trace.seq = 0; at = 0.0; depth = 0; kind = Trace.Oracle;
            name = "o"; dur = Some Float.nan;
            attrs = [ ("x", Trace.Float Float.infinity) ] }
        in
        Alcotest.(check bool) "jsonl parses" true
          (Tiny_json.parse_opt (Trace_export.jsonl [ e ]) <> None);
        Alcotest.(check bool) "chrome parses" true
          (Tiny_json.parse_opt (Trace_export.chrome [ e ]) <> None)) ]

(* ------------------------------------------------------------------ *)
(* Serialization: Chrome validity on a real run; JSONL round-trip as a
   property over random streams with finite floats *)

let chrome_tests =
  [ t "chrome export of a traced reduction is valid JSON" (fun () ->
        with_traced (fun () ->
            let _ =
              Pipeline.shap_via_count_oracle
                ~oracle:Pipeline.dpll_count_oracle ~vars:[ 1; 2; 3 ]
                Helpers.example2_formula
            in
            let evs = Trace.events () in
            let doc =
              match Tiny_json.parse_opt (Trace_export.chrome evs) with
              | Some d -> d
              | None -> Alcotest.fail "chrome export did not parse"
            in
            let records =
              match
                Option.bind (Tiny_json.member "traceEvents" doc)
                  Tiny_json.to_list
              with
              | Some l -> l
              | None -> Alcotest.fail "no traceEvents array"
            in
            let ph r =
              match Option.bind (Tiny_json.member "ph" r) Tiny_json.to_str
              with
              | Some p -> p
              | None -> Alcotest.fail "record without ph"
            in
            let count p = List.length (List.filter (fun r -> ph r = p) records)
            in
            Alcotest.(check int) "one metadata record" 1 (count "M");
            Alcotest.(check int) "B/E balanced" (count "B") (count "E");
            Alcotest.(check int) "one X per oracle event"
              (List.length (events_of_kind Trace.Oracle evs))
              (count "X");
            Alcotest.(check int) "every event serialized"
              (List.length evs + 1)
              (List.length records))) ]

(* Finite floats that survive %.17g round-tripping exactly. *)
let gen_finite_float =
  QCheck.Gen.(
    map2
      (fun a b -> float_of_int a /. float_of_int (1 + abs b))
      (int_range (-1_000_000) 1_000_000)
      (int_range 0 1000))

let gen_value =
  QCheck.Gen.(
    oneof
      [ map (fun i -> Trace.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun f -> Trace.Float f) gen_finite_float;
        map (fun s -> Trace.Str s)
          (string_size ~gen:printable (int_range 0 12));
        map (fun b -> Trace.Bool b) bool ])

let gen_event =
  QCheck.Gen.(
    let* kind =
      oneofl
        [ Trace.Span_begin; Trace.Span_end; Trace.Oracle; Trace.Subst;
          Trace.Phase; Trace.Counter ]
    in
    let* name = string_size ~gen:printable (int_range 1 16) in
    let* at = gen_finite_float in
    let* depth = int_range 0 6 in
    let* dur = opt gen_finite_float in
    let* attrs =
      list_size (int_range 0 4)
        (pair (string_size ~gen:printable (int_range 1 8)) gen_value)
    in
    return
      { Trace.seq = 0; at = Float.abs at; depth; kind; name; dur; attrs })

let gen_stream =
  QCheck.Gen.(
    map
      (List.mapi (fun i e -> { e with Trace.seq = i }))
      (list_size (int_range 0 20) gen_event))

let arb_stream =
  QCheck.make
    ~print:(fun evs -> Trace_export.jsonl evs)
    gen_stream

let roundtrip_tests =
  [ qtest ~count:200 "JSONL round-trips structurally" arb_stream (fun evs ->
        Trace_export.events_of_jsonl (Trace_export.jsonl evs) = evs);
    qtest ~count:200 "chrome export always parses" arb_stream (fun evs ->
        Tiny_json.parse_opt (Trace_export.chrome evs) <> None);
    t "report renders a round-tripped stream" (fun () ->
        with_traced (fun () ->
            let _ =
              Pipeline.kcounts_via_count_oracle
                ~oracle:Pipeline.dpll_count_oracle ~vars:[ 1; 2; 3 ]
                Helpers.example2_formula
            in
            let evs = Trace.events () in
            let back =
              Trace_export.events_of_jsonl (Trace_export.jsonl evs)
            in
            Alcotest.(check bool) "stream survives" true (back = evs);
            let r = Trace_export.report back in
            List.iter
              (fun affix ->
                 Alcotest.(check bool) affix true
                   (let n = String.length affix and m = String.length r in
                    let rec go i =
                      i + n <= m && (String.sub r i n = affix || go (i + 1))
                    in
                    go 0))
              [ "lemma3.3.consult"; "lemma3.3.solve"; "oracle totals";
                "per-phase aggregates"; "dpll" ])) ]

(* ------------------------------------------------------------------ *)
(* The JSONL meta line: written files carry stored/dropped bookkeeping
   that survives a round trip; the report surfaces drops as a banner. *)

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let meta_tests =
  [ t "write_file records drops; read_jsonl_file_full recovers them"
      (fun () ->
         let evs = QCheck.Gen.generate1 ~rand:(Random.State.make [| 77 |])
             gen_stream
         in
         let path = Filename.temp_file "shapmc_trace" ".jsonl" in
         Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
             Trace_export.write_file ~dropped:5 ~path evs;
             let back, dropped = Trace_export.read_jsonl_file_full path in
             Alcotest.(check int) "dropped recovered" 5 dropped;
             Alcotest.(check bool) "events survive" true (back = evs);
             (* the plain reader skips the meta line silently *)
             Alcotest.(check bool) "plain reader agrees" true
               (Trace_export.read_jsonl_file path = evs)));
    t "jsonl stays pure: no meta line without write_file" (fun () ->
        let evs = QCheck.Gen.generate1 ~rand:(Random.State.make [| 78 |])
            gen_stream
        in
        Alcotest.(check bool) "no meta in jsonl output" true
          (not (contains "\"meta\"" (Trace_export.jsonl evs))));
    t "report banners dropped events" (fun () ->
        let r = Trace_export.report ~dropped:7 [] in
        Alcotest.(check bool) "banner present" true
          (contains
             "WARNING: 7 events dropped; aggregates from ledger, timeline \
              truncated"
             r);
        Alcotest.(check bool) "no banner at zero" true
          (not (contains "WARNING" (Trace_export.report []))));
    t "report --percentiles totals match the oracle events" (fun () ->
        with_traced (fun () ->
            let _ =
              Pipeline.shap_via_count_oracle
                ~oracle:Pipeline.dpll_count_oracle ~vars:[ 1; 2; 3 ]
                Helpers.example2_formula
            in
            let evs = Trace.events () in
            let r = Trace_export.report ~percentiles:true evs in
            Alcotest.(check bool) "percentile section present" true
              (contains "oracle latency percentiles" r);
            (* the TOTAL row's call count equals the ledger's *)
            Alcotest.(check bool) "TOTAL row carries 13 calls" true
              (contains "TOTAL" r && Obs.call_count () = 13))) ]

let suite =
  skeleton_tests @ gating_tests @ bound_tests @ clamp_tests @ chrome_tests
  @ roundtrip_tests @ meta_tests
