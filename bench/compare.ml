(* Benchmark regression gate.

   Usage:  compare.exe baseline.json results.json

   Diffs a fresh BENCH_results.json (written by main.exe) against the
   committed bench/baseline.json and exits nonzero on regression:

   - oracle-call totals are compared EXACTLY.  Every bench section draws
     its workload from a pinned Random.State seed, so the number of
     oracle consultations — the cost measure of Theorem 3.1 — is fully
     deterministic; any drift means a reduction started consulting its
     oracle a different number of times, which is precisely the kind of
     regression the paper's bounds rule out.  The same applies to the
     recorded n/l/size maxima.

   - wall-clock is compared with tolerance: a section regresses when
     [current > baseline * (1 + tol) + slack] with [tol] read from
     SHAPMC_BENCH_TOL (default 1.0, i.e. allow 2x) and a fixed 0.25 s
     absolute slack so microsecond-scale sections never flap.

   Section sets must match exactly in both directions: a section present
   in the baseline but absent from the results means an experiment was
   dropped; a section present in the results but absent from the
   baseline means the baseline is stale.  Either way the gate fails with
   a per-key message naming the file the section is missing from, so the
   fix (regenerate bench/baseline.json deliberately) is obvious.
   Malformed or unreadable input fails with a [bench-check:] diagnostic
   and exit code 2 rather than an uncaught exception. *)

let tolerance =
  match Sys.getenv_opt "SHAPMC_BENCH_TOL" with
  | None -> 1.0
  | Some s -> (
      match float_of_string_opt s with
      | Some t when t >= 0.0 -> t
      | _ ->
        Printf.eprintf "bench-check: ignoring bad SHAPMC_BENCH_TOL %S\n" s;
        1.0)

let slack = 0.25

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let failures = ref 0

let regression fmt =
  Printf.ksprintf
    (fun m ->
       incr failures;
       Printf.printf "  REGRESSION %s\n" m)
    fmt

let obj_fields = function
  | Tiny_json.Obj fields -> fields
  | _ -> failwith "bench-check: expected a JSON object"

let field name doc =
  match Tiny_json.member name doc with
  | Some v -> v
  | None -> failwith (Printf.sprintf "bench-check: missing field %S" name)

let int_field name doc =
  match Tiny_json.to_int (field name doc) with
  | Some i -> i
  | None -> failwith (Printf.sprintf "bench-check: field %S is not an int" name)

let float_field name doc =
  match Tiny_json.to_float (field name doc) with
  | Some f -> f
  | None ->
    failwith (Printf.sprintf "bench-check: field %S is not a number" name)

let string_field name doc =
  match Tiny_json.to_str (field name doc) with
  | Some s -> s
  | None ->
    failwith (Printf.sprintf "bench-check: field %S is not a string" name)

let sections_of doc = obj_fields (field "sections" doc)

let seconds_of s = float_field "seconds" s

let oracles_of s = obj_fields (field "oracles" s)

(* Exact comparison of one oracle's integer totals. *)
let check_oracle ~sec name base cur =
  List.iter
    (fun f ->
       let b = int_field f base in
       let c = int_field f cur in
       if b <> c then
         regression "%s: oracle %s %s changed %d -> %d" sec name f b c)
    [ "calls"; "n_max"; "l_max"; "max_size" ]

let check_section ~sec base cur =
  let b_s = seconds_of base and c_s = seconds_of cur in
  let limit = (b_s *. (1.0 +. tolerance)) +. slack in
  if c_s > limit then
    regression "%s: wall-clock %.3fs exceeds limit %.3fs (baseline %.3fs)" sec
      c_s limit b_s
  else
    Printf.printf "  ok %-4s wall-clock %.3fs (baseline %.3fs, limit %.3fs)\n"
      sec c_s b_s limit;
  let b_oracles = oracles_of base and c_oracles = oracles_of cur in
  List.iter
    (fun (name, b) ->
       match List.assoc_opt name c_oracles with
       | None -> regression "%s: oracle %s disappeared" sec name
       | Some c -> check_oracle ~sec name b c)
    b_oracles;
  List.iter
    (fun (name, _) ->
       if not (List.mem_assoc name b_oracles) then
         regression "%s: new oracle %s not in the baseline" sec name)
    c_oracles

let main () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: compare.exe baseline.json results.json";
    exit 2
  end;
  let base = Tiny_json.parse (read_file Sys.argv.(1)) in
  let cur = Tiny_json.parse (read_file Sys.argv.(2)) in
  let b_mode = string_field "mode" base in
  let c_mode = string_field "mode" cur in
  if b_mode <> c_mode then begin
    Printf.eprintf
      "bench-check: mode mismatch (baseline %s, results %s) — not comparable\n"
      b_mode c_mode;
    exit 2
  end;
  Printf.printf
    "bench-check: %s vs %s (mode %s, tol %.2f + %.2fs slack; exact \
     oracle-call totals)\n"
    Sys.argv.(2) Sys.argv.(1) b_mode tolerance slack;
  let b_sections = sections_of base and c_sections = sections_of cur in
  List.iter
    (fun (sec, b) ->
       match List.assoc_opt sec c_sections with
       | None ->
         regression
           "%s: section in baseline %s but missing from results %s (an \
            experiment was dropped or renamed)"
           sec Sys.argv.(1) Sys.argv.(2)
       | Some c -> check_section ~sec b c)
    b_sections;
  List.iter
    (fun (sec, _) ->
       if not (List.mem_assoc sec b_sections) then
         regression
           "%s: section in results %s but missing from baseline %s \
            (regenerate bench/baseline.json deliberately to admit it)"
           sec Sys.argv.(2) Sys.argv.(1))
    c_sections;
  if !failures > 0 then begin
    Printf.printf
      "bench-check FAILED: %d regression%s (raise SHAPMC_BENCH_TOL for noisy \
       machines; regenerate bench/baseline.json deliberately if the cost \
       profile legitimately changed)\n"
      !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end;
  Printf.printf "bench-check passed: %d sections within bounds\n"
    (List.length b_sections)

let () =
  try main () with
  | Failure msg ->
    let msg =
      if String.length msg >= 12 && String.sub msg 0 12 = "bench-check:" then
        msg
      else "bench-check: " ^ msg
    in
    prerr_endline msg;
    exit 2
  | Sys_error msg ->
    prerr_endline ("bench-check: " ^ msg);
    exit 2
