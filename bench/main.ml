(* Benchmark & reproduction harness.

   One section per experiment of DESIGN.md §4 (E1–E19): the paper's only
   table (Example 2) and only figure (the §5.2 commutative diagram) are
   reproduced exactly; every theorem-level claim gets a validation +
   scaling section whose rows are recorded in EXPERIMENTS.md.  A final
   section runs bechamel micro-benchmarks of the library's kernels.

   Run with:  dune exec bench/main.exe            (full, a few minutes)
              dune exec bench/main.exe -- quick   (skips the slowest rows) *)

let quick =
  Array.length Sys.argv > 1 && Sys.argv.(1) = "quick"

let section id title =
  Printf.printf "\n%s\n=== %-3s %s\n%s\n" (String.make 78 '=') id title
    (String.make 78 '=')

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let row fmt = Printf.printf fmt

let check label ok =
  Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") label;
  if not ok then exit 1

let shap_equal a b =
  List.for_all2
    (fun (i, x) (j, y) -> i = j && Rat.equal x y)
    (List.sort compare a) (List.sort compare b)

let rec random_formula st ~nvars ~depth =
  if depth <= 0 then Formula.var (1 + Random.State.int st nvars)
  else begin
    match Random.State.int st 8 with
    | 0 | 1 -> Formula.var (1 + Random.State.int st nvars)
    | 2 -> Formula.not_ (random_formula st ~nvars ~depth:(depth - 1))
    | 3 | 4 ->
      Formula.conj2
        (random_formula st ~nvars ~depth:(depth - 1))
        (random_formula st ~nvars ~depth:(depth - 1))
    | _ ->
      Formula.disj2
        (random_formula st ~nvars ~depth:(depth - 1))
        (random_formula st ~nvars ~depth:(depth - 1))
  end

(* A random formula guaranteed to mention all of 1..nvars. *)
let random_full_formula st ~nvars ~depth =
  let rec retry k =
    let f = random_formula st ~nvars ~depth in
    if Vset.cardinal (Formula.vars f) = nvars then f
    else if k > 200 then
      (* pad: conjoin a tautology on the missing variables *)
      Formula.and_
        (f
         :: List.filter_map
           (fun v ->
              if Vset.mem v (Formula.vars f) then None
              else
                Some (Formula.disj2 (Formula.var v)
                        (Formula.not_ (Formula.var v))))
           (List.init nvars succ))
    else retry (k + 1)
  in
  retry 0

(* ------------------------------------------------------------------ *)
(* E1: the Example 2 table *)

let e1 () =
  section "E1" "Example 2 table: permutation marginals and Shapley values";
  let f = Parser.formula_of_string_exn "x1 & (x2 | !x3)" in
  let vars = [ 1; 2; 3 ] in
  row "  F = %s\n\n" (Formula.to_string f);
  row "  %-12s %4s %4s %4s\n" "permutation" "i=1" "i=2" "i=3";
  List.iter
    (fun (pi, cols) ->
       row "  (%s)    %4d %4d %4d\n"
         (String.concat ", " (List.map string_of_int pi))
         (List.nth cols 0) (List.nth cols 1) (List.nth cols 2))
    (Naive.permutation_table ~vars f);
  let shap = Naive.shap_permutations ~vars f in
  row "\n  Shapley values: %s\n"
    (String.concat ", "
       (List.map (fun (i, v) -> Printf.sprintf "x%d = %s" i (Rat.to_string v)) shap));
  check "matches the paper: (5/6, 2/6, -1/6)"
    (shap_equal shap
       [ (1, Rat.of_ints 5 6); (2, Rat.of_ints 2 6); (3, Rat.of_ints (-1) 6) ]);
  check "Example 4: same values via Eq. (2)"
    (shap_equal shap (Naive.shap_subsets ~vars f));
  check "Example 6 / Prop. 5: values sum to F(1) - F(0) = 1"
    (Rat.equal (Naive.shap_sum shap) Rat.one)

(* ------------------------------------------------------------------ *)
(* E2: the commutative diagram of §5.2 *)

let e2 () =
  section "E2" "Commutative diagram: stretching = OR-substitution at lineage level";
  let trials = if quick then 10 else 40 in
  let ok = ref 0 in
  let st = Random.State.make [| 42 |] in
  for seed = 1 to trials do
    let a = 1 + Random.State.int st 3 and b = 1 + Random.State.int st 3 in
    let inst = Bipartite.random ~a ~b ~density:0.6 ~seed in
    let db, q = Hardness.encode inst in
    let widths v = (v + seed) mod 3 in
    let is_endo r = Database.kind_of db r = Database.Endogenous in
    let qt, _ = Stretch.stretch_query ~is_endogenous:is_endo q in
    let dbt, blocks = Stretch.or_substituted_db ~widths db in
    let f_sub =
      Subst.apply
        (fun v ->
           match List.assoc_opt v blocks with
           | Some zs -> Formula.or_ (List.map Formula.var zs)
           | None -> Formula.var v)
        (Lineage.lineage_formula db q)
    in
    if Semantics.equivalent f_sub (Lineage.lineage_formula dbt qt) then incr ok
  done;
  row "  random Q0 databases checked: %d, diagram commuted on: %d\n" trials !ok;
  check "diagram commutes on every instance" (!ok = trials);
  (* Lemma 12 round trip through Claim 5.2's collapse *)
  let db, q = Hardness.encode (Bipartite.make ~a:2 ~b:2 [ (0, 0); (1, 1); (0, 1) ]) in
  let db', blocks = Stretch.or_substituted_q0_db ~widths:(fun v -> 1 + (v mod 2)) db in
  let f_sub =
    Subst.apply
      (fun v ->
         match List.assoc_opt v blocks with
         | Some zs -> Formula.or_ (List.map Formula.var zs)
         | None -> Formula.var v)
      (Lineage.lineage_formula db q)
  in
  check "Claim 5.2: OR-substituted lineage realized inside C_Q0"
    (Semantics.equivalent f_sub (Lineage.lineage_formula db' q))

(* ------------------------------------------------------------------ *)
(* E3: Lemma 3.2 — Shapley from fixed-size counts *)

let e3 () =
  section "E3" "Lemma 3.2: Shap from a #_* oracle (agreement + oracle calls)";
  let st = Random.State.make [| 7 |] in
  row "  %-4s %-10s %-14s %-10s\n" "n" "#oracle" "agree" "time(s)";
  List.iter
    (fun n ->
       let f = random_full_formula st ~nvars:n ~depth:(n - 1) in
       let vars = List.init n succ in
       let calls = ref 0 in
       let oracle =
         Pipeline.{
           oracle_name = "dpll-counting";
           count =
             (fun ~vars f ->
                incr calls;
                Dpll.count_universe ~vars f);
         }
       in
       let via, t =
         time (fun () -> Pipeline.shap_via_count_oracle ~oracle ~vars f)
       in
       let reference = Naive.shap_subsets ~vars f in
       row "  %-4d %-10d %-14b %-10.4f\n" n !calls (shap_equal via reference) t;
       if not (shap_equal via reference) then exit 1)
    [ 2; 3; 4; 5; 6 ];
  row "  (oracle calls grow as (n+1)^2 + ... — polynomial, per Theorem 3.1)\n"

(* ------------------------------------------------------------------ *)
(* E4: Lemma 3.3 / Claim 3.5 + solver ablation *)

let e4 () =
  section "E4" "Lemma 3.3: #_* from a # oracle via the 2^l-1 Vandermonde system";
  let st = Random.State.make [| 11 |] in
  row "  %-4s %-8s %-12s %-12s %-12s\n" "n" "agree" "claim3.5" "interp(s)"
    "gauss(s)";
  List.iter
    (fun n ->
       let f = random_full_formula st ~nvars:n ~depth:n in
       let vars = List.init n succ in
       let kv_ref = Brute.count_by_size ~vars f in
       let kv =
         Pipeline.kcounts_via_count_oracle ~oracle:Pipeline.dpll_count_oracle
           ~vars f
       in
       (* Claim 3.5 at l = 2 directly *)
       let universe = Vset.of_list vars in
       let g, blocks = Subst.uniform_or ~universe ~l:2 f in
       let lhs = Dpll.count_universe ~vars:(List.concat_map snd blocks) g in
       let claim35 =
         Bigint.equal lhs (Kvec.weighted_sum kv_ref (Bigint.two_pow_minus_one 2))
       in
       (* ablation: interpolation vs Gaussian elimination on the system *)
       let points = Reductions.or_points ~count:(n + 1) in
       let values =
         Array.init (n + 1) (fun i ->
             Rat.of_bigint
               (Kvec.weighted_sum kv_ref
                  (Bigint.two_pow_minus_one (i + 1))))
       in
       let _, t_interp =
         time (fun () -> Linalg.vandermonde_solve ~points ~values)
       in
       let matrix = Linalg.vandermonde_matrix points ~cols:(n + 1) in
       let _, t_gauss = time (fun () -> Linalg.gauss_solve matrix values) in
       row "  %-4d %-8b %-12b %-12.5f %-12.5f\n" n (Kvec.equal kv kv_ref)
         claim35 t_interp t_gauss;
       if not (Kvec.equal kv kv_ref && claim35) then exit 1)
    (if quick then [ 3; 5; 7 ] else [ 3; 5; 7; 9; 11; 13 ]);
  row "  (Newton interpolation solves the Vandermonde system in O(n^2) exact\n";
  row "   ops; Gaussian elimination is the O(n^3) ablation baseline)\n"

(* ------------------------------------------------------------------ *)
(* E5: Lemma 3.4 — counts from a Shapley oracle *)

let e5 () =
  section "E5" "Lemma 3.4 (repaired): # from a Shap oracle, n^2 calls";
  let st = Random.State.make [| 13 |] in
  row "  %-4s %-10s %-8s %-10s\n" "n" "#oracle" "agree" "time(s)";
  List.iter
    (fun n ->
       let f = random_full_formula st ~nvars:n ~depth:n in
       let vars = List.init n succ in
       let calls = ref 0 in
       let oracle =
         Pipeline.{
           shap_name = "circuit-shapley";
           shap =
             (fun ~vars f ->
                incr calls;
                Circuit_shapley.shap_direct ~vars (Compile.compile f));
         }
       in
       let via, t =
         time (fun () -> Pipeline.count_via_shap_oracle ~oracle ~vars f)
       in
       let reference = Brute.count ~vars f in
       row "  %-4d %-10d %-8b %-10.4f\n" n !calls (Bigint.equal via reference) t;
       if not (Bigint.equal via reference) then exit 1)
    [ 2; 3; 4; 5 ];
  row "  (weights use the repaired Lemma 3.4 system; see DESIGN.md section 2a)\n"

(* ------------------------------------------------------------------ *)
(* E6: Corollary 7 round trip *)

let e6 () =
  section "E6" "Corollary 7: # -> Shap -> # round trip on OR-closed classes";
  let st = Random.State.make [| 17 |] in
  let trials = if quick then 5 else 12 in
  let ok = ref 0 in
  let _, t =
    time (fun () ->
        for _ = 1 to trials do
          let n = 2 + Random.State.int st 2 in
          let f = random_full_formula st ~nvars:n ~depth:3 in
          let vars = List.init n succ in
          if Bigint.equal
              (Pipeline.roundtrip_count ~vars f)
              (Brute.count ~vars f)
          then incr ok
        done)
  in
  row "  random functions: %d, round trips correct: %d (%.2fs total)\n" trials
    !ok t;
  check "every round trip exact" (!ok = trials)

(* ------------------------------------------------------------------ *)
(* E7: Lemma 9 — OR-substitution cost on circuits *)

let e7 () =
  section "E7" "Lemma 9: circuit OR-substitution is O(|G| + k*l)";
  (* a chain formula compiled to a mid-sized circuit *)
  let n = 12 in
  let f =
    Formula.and_
      (List.init (n - 1) (fun i ->
           Formula.disj2
             (Formula.not_ (Formula.var (i + 1)))
             (Formula.var (i + 2))))
  in
  let g = Compile.compile f in
  row "  base circuit: %d gates, %d variables\n" (Circuit.size g) n;
  row "  %-6s %-10s %-12s %-12s %-10s\n" "l" "gates" "delta/l" "time(s)"
    "count-ok";
  let base = Circuit.size g in
  List.iter
    (fun l ->
       let (g', _), t = time (fun () -> Or_subst.uniform_or ~l g) in
       (* Cross-check the substituted circuit's count against DPLL on its
          unfolded formula (the exhaustive determinism check is infeasible
          beyond ~14-variable gate scopes; l=1 is covered by the tests). *)
       let count_ok =
         if l <= 4 then
           Printf.sprintf "%b"
             (Bigint.equal (Count.count_circuit g')
                (Dpll.count (Circuit.to_formula g')))
         else "-"
       in
       row "  %-6d %-10d %-12.1f %-12.5f %-10s\n" l (Circuit.size g')
         (float_of_int (Circuit.size g' - base) /. float_of_int l)
         t count_ok)
    [ 1; 2; 4; 8; 16; 32; 64 ];
  row "  (delta/l stabilizes: growth is linear in l, as Lemma 9 states)\n"

(* ------------------------------------------------------------------ *)
(* E8: Theorem 4.1 — polynomial Shapley on circuits vs the definition *)

let e8 () =
  section "E8" "Theorem 4.1: Shapley on d-D circuits, polynomial vs exponential";
  row "  %-4s %-8s %-14s %-14s %-14s\n" "n" "gates" "subsets-2^n(s)"
    "circuit(s)" "via-reduction(s)";
  let sizes = if quick then [ 6; 8; 10; 12 ] else [ 6; 8; 10; 12; 14; 16; 18 ] in
  List.iter
    (fun n ->
       (* read-once-ish chain: compiles small, so the contrast is honest *)
       let f =
         Formula.and_
           (List.init (n / 2) (fun i ->
                Formula.disj2
                  (Formula.var ((2 * i) + 1))
                  (Formula.var ((2 * i) + 2))))
       in
       let vars = List.init n succ in
       let c = Compile.compile f in
       let naive_t =
         if n <= 14 then begin
           let _, t = time (fun () -> Naive.shap_subsets ~vars f) in
           Printf.sprintf "%.4f" t
         end
         else "(skipped)"
       in
       let shap_c, t_c = time (fun () -> Circuit_shapley.shap_direct ~vars c) in
       let t_r =
         if n <= 12 then begin
           let _, t = time (fun () -> Circuit_shapley.shap_via_reduction ~vars c) in
           Printf.sprintf "%.4f" t
         end
         else "(skipped)"
       in
       ignore shap_c;
       row "  %-4d %-8d %-14s %-14.4f %-14s\n" n (Circuit.size c) naive_t t_c t_r)
    sizes;
  (* correctness spot check *)
  let f = Parser.formula_of_string_exn "x1 & x2 | !x1 & x3 | x4" in
  let vars = [ 1; 2; 3; 4 ] in
  let c = Compile.compile f in
  check "circuit results match the definition"
    (shap_equal (Naive.shap_subsets ~vars f) (Circuit_shapley.shap_direct ~vars c));
  check "reduction route matches direct route"
    (shap_equal
       (Circuit_shapley.shap_direct ~vars c)
       (Circuit_shapley.shap_via_reduction ~vars c))

(* ------------------------------------------------------------------ *)
(* E9: Theorem 5.1 tractable side — hierarchical scaling *)

let e9 () =
  section "E9" "Theorem 5.1 (tractable): hierarchical queries scale polynomially";
  let q = Db_parser.parse_query "R(x), S(x, y)" in
  row "  query: %s\n" (Cq.to_string q);
  row "  %-8s %-8s %-10s %-14s %-14s\n" "tuples" "vars" "gates" "safe-plan(s)"
    "brute(s)";
  let sizes = if quick then [ 8; 16; 24 ] else [ 8; 16; 24; 32; 48; 64 ] in
  List.iter
    (fun size ->
       let st = Random.State.make [| size |] in
       let db = Database.create () in
       Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
       Database.declare db "S" ~kind:Database.Endogenous ~arity:2;
       let xs = size / 4 in
       for i = 1 to xs do
         ignore (Database.insert db "R" [| Value.int i |])
       done;
       let inserted = ref 0 in
       while !inserted < size - xs do
         let i = 1 + Random.State.int st xs in
         let j = 1 + Random.State.int st size in
         if not (Database.mem db "S" [| Value.int i; Value.int j |]) then begin
           ignore (Database.insert db "S" [| Value.int i; Value.int j |]);
           incr inserted
         end
       done;
       let nvars = Vset.cardinal (Database.lineage_vars db) in
       let c = Safe_plan.lineage_circuit db q in
       let _, t_safe = time (fun () -> Safe_plan.shapley db q) in
       let brute_t =
         if nvars <= 20 then begin
           let reference, t = time (fun () -> Dichotomy.shapley_brute db q) in
           let got = Safe_plan.shapley db q in
           if not (shap_equal reference got) then exit 1;
           Printf.sprintf "%.4f" t
         end
         else "(skipped)"
       in
       row "  %-8d %-8d %-10d %-14.4f %-14s\n" size nvars (Circuit.size c)
         t_safe brute_t)
    sizes;
  row "  (safe-plan time grows polynomially with the database;\n";
  row "   the 2^n reference explodes past ~20 tuples)\n"

(* ------------------------------------------------------------------ *)
(* E10: Theorem 5.1 hard side — bipartite DNF through the Shapley oracle *)

let e10 () =
  section "E10" "Theorem 5.1 (hard): #bipartite-DNF via a Q0 Shapley oracle";
  row "  %-10s %-8s %-12s %-10s %-12s\n" "a+b" "edges" "#F" "calls" "time(s)";
  let insts =
    if quick then [ (2, 2, 3) ] else [ (2, 2, 3); (2, 3, 4); (3, 3, 5) ]
  in
  List.iter
    (fun (a, b, seed) ->
       let inst = Bipartite.random ~a ~b ~density:0.6 ~seed in
       let direct = Bipartite.count inst in
       let via, t =
         time (fun () ->
             Hardness.count_via_q0_shapley ~oracle:Hardness.reference_oracle
               inst)
       in
       row "  %-10s %-8d %-12s %-10d %-12.3f\n"
         (Printf.sprintf "%d+%d" a b)
         (List.length inst.Bipartite.edges)
         (Bigint.to_string direct)
         (Hardness.oracle_calls inst) t;
       if not (Bigint.equal via direct) then exit 1)
    insts;
  check "oracle-derived counts exact on all instances" true;
  (* the baseline counter is exponential in the left part *)
  row "\n  baseline #bipartite-DNF counter (exponential in min side):\n";
  row "  %-6s %-12s %-12s\n" "a=b" "edges" "time(s)";
  List.iter
    (fun a ->
       let inst = Bipartite.random ~a ~b:a ~density:0.3 ~seed:a in
       let _, t = time (fun () -> Bipartite.count inst) in
       row "  %-6d %-12d %-12.4f\n" a (List.length inst.Bipartite.edges) t)
    (if quick then [ 8; 12; 16 ] else [ 8; 12; 16; 18; 20 ])

(* ------------------------------------------------------------------ *)
(* E11: Claim 3.7 — AND-substitutions *)

let e11 () =
  section "E11" "Claim 3.7: the AND-substitution variant";
  let st = Random.State.make [| 23 |] in
  row "  %-4s %-8s\n" "n" "agree";
  List.iter
    (fun n ->
       let f = random_full_formula st ~nvars:n ~depth:n in
       let vars = List.init n succ in
       let universe = Vset.of_list vars in
       let kv =
         Reductions.kcounts_via_counting_and ~n ~count_subst:(fun ~l ->
             let g, blocks = Subst.uniform_and ~universe ~l f in
             Dpll.count_universe ~vars:(List.concat_map snd blocks) g)
       in
       let ok = Kvec.equal kv (Brute.count_by_size ~vars f) in
       row "  %-4d %-8b\n" n ok;
       if not ok then exit 1)
    [ 2; 3; 4; 5; 6 ];
  check "AND-substituted reduction recovers #_* exactly" true

(* ------------------------------------------------------------------ *)
(* E12: the identity gallery *)

let e12 () =
  section "E12" "Identities: Prop. 3, Prop. 5, Claims 3.5/3.6/3.7, Eq. (7)/(8)";
  let st = Random.State.make [| 29 |] in
  let trials = if quick then 15 else 50 in
  let counters = Hashtbl.create 8 in
  let bump k ok =
    let p, t = Option.value ~default:(0, 0) (Hashtbl.find_opt counters k) in
    Hashtbl.replace counters k ((p + if ok then 1 else 0), t + 1)
  in
  for _ = 1 to trials do
    let n = 2 + Random.State.int st 3 in
    let f = random_full_formula st ~nvars:n ~depth:3 in
    let vars = List.init n succ in
    bump "Prop. 3 (Eq.1 = Eq.2)" (Identities.prop3 ~vars f);
    bump "Prop. 5 (efficiency)" (Identities.prop5 ~vars f);
    bump "Claim 3.5 (l=2)" (Identities.claim35 ~l:2 ~vars f);
    bump "Claim 3.6" (Identities.claim36 ~vars f);
    bump "Claim 3.7 (l=2)" (Identities.claim37 ~l:2 ~vars f);
    bump "Eq. (7)" (Identities.eq7 ~vars f);
    bump "Eq. (8)" (Identities.eq8 ~vars f)
  done;
  Hashtbl.iter
    (fun k (p, t) ->
       row "  %-26s %d/%d\n" k p t;
       if p <> t then exit 1)
    counters;
  (* the Lemma 3.4 repair, pinned *)
  let f = Parser.formula_of_string_exn "x1 & x2" in
  let universe = Vset.of_list [ 1; 2 ] in
  let g, z, blocks = Subst.uniform_or_except ~universe ~l:2 ~keep:1 f in
  let gvars = List.concat_map snd blocks in
  let truth = List.assoc z (Naive.shap_subsets ~vars:gvars g) in
  row "  Lemma 3.4 witness: Shap(F^(2,1), Z_1) = %s " (Rat.to_string truth);
  row "(paper's displayed formula gives 3/2; repaired weight gives %s)\n"
    (Rat.to_string (Reductions.lemma34_weight ~n:2 ~l:2 ~j:1));
  check "repaired Lemma 3.4 weight matches the true Shapley value"
    (Rat.equal truth (Reductions.lemma34_weight ~n:2 ~l:2 ~j:1))

(* ------------------------------------------------------------------ *)
(* E13: tractable counting classes feed the pipeline *)

let e13 () =
  section "E13" "DPLL with decomposition: read-once classes stay polynomial";
  row "  %-6s %-10s %-14s %-16s\n" "vars" "branches" "dpll-count(s)"
    "shap-pipeline(s)";
  let sizes = if quick then [ 10; 20 ] else [ 10; 20; 30; 40 ] in
  List.iter
    (fun half ->
       (* (x1|x2) & (x3|x4) & ... — read-once, beta-acyclic CNF *)
       let f =
         Formula.and_
           (List.init half (fun i ->
                Formula.disj2
                  (Formula.var ((2 * i) + 1))
                  (Formula.var ((2 * i) + 2))))
       in
       let n = 2 * half in
       let vars = List.init n succ in
       let (_, stats), t_count = time (fun () -> Dpll.count_with_stats f) in
       let t_shap =
         if half <= 20 then begin
           let _, t =
             time (fun () ->
                 Circuit_shapley.shap_direct ~vars (Compile.compile f))
           in
           Printf.sprintf "%.4f" t
         end
         else "(skipped)"
       in
       row "  %-6d %-10d %-14.4f %-16s\n" n stats.Dpll.branches t_count t_shap)
    sizes;
  row "  (component decomposition keeps branch counts linear — this is the\n";
  row "   mechanism behind the beta-acyclic tractability remark in Sec. 3)\n"

(* ------------------------------------------------------------------ *)
(* E14: the prior-work PQE route vs this paper's counting route, and the
   related-work score gallery (SHAP score, Banzhaf) *)

let e14 () =
  section "E14" "Routes & scores: PQE route [13] vs counting route; SHAP/Banzhaf";
  let st = Random.State.make [| 37 |] in
  row "  %-4s %-12s %-14s %-8s\n" "n" "via-PQE(s)" "via-count(s)" "agree";
  List.iter
    (fun n ->
       let f = random_full_formula st ~nvars:n ~depth:n in
       let vars = List.init n succ in
       let a, t_pqe =
         time (fun () ->
             Pipeline.shap_via_pqe_oracle ~oracle:Pipeline.pqe_circuit_oracle
               ~vars f)
       in
       let b, t_cnt =
         time (fun () ->
             Pipeline.shap_via_count_oracle ~oracle:Pipeline.dpll_count_oracle
               ~vars f)
       in
       row "  %-4d %-12.4f %-14.4f %-8b\n" n t_pqe t_cnt (shap_equal a b);
       if not (shap_equal a b) then exit 1)
    [ 3; 4; 5; 6; 7 ];
  (* the score gallery on Example 2 *)
  let f = Parser.formula_of_string_exn "x1 & (x2 | !x3)" in
  let vars = [ 1; 2; 3 ] in
  let c = Compile.compile f in
  let fmt_shap l =
    String.concat "  "
      (List.map (fun (i, v) -> Printf.sprintf "x%d=%s" i (Rat.to_string v)) l)
  in
  row "\n  score gallery on F = x1 & (x2 | !x3):\n";
  row "  %-26s %s\n" "Shapley (the paper):"
    (fmt_shap (Circuit_shapley.shap_direct ~vars c));
  row "  %-26s %s\n" "Banzhaf:"
    (fmt_shap (Power_indices.banzhaf_circuit ~vars c));
  row "  %-26s %s\n" "SHAP score (e=1, p=1/2):"
    (fmt_shap
       (Prob.shap_score ~weights:Prob.uniform_half ~entity:(fun _ -> true)
          ~vars c));
  row "  %-26s %s\n" "SHAP score (e=1, p=0):"
    (fmt_shap
       (Prob.shap_score ~weights:(fun _ -> Rat.zero) ~entity:(fun _ -> true)
          ~vars c));
  check "SHAP(e=1, p=0) coincides with the Shapley value"
    (shap_equal
       (Circuit_shapley.shap_direct ~vars c)
       (Prob.shap_score ~weights:(fun _ -> Rat.zero) ~entity:(fun _ -> true)
          ~vars c));
  check "SHAP(e=1, p=1/2) differs (the paper's caveat)"
    (not
       (shap_equal
          (Circuit_shapley.shap_direct ~vars c)
          (Prob.shap_score ~weights:Prob.uniform_half
             ~entity:(fun _ -> true) ~vars c)))

(* ------------------------------------------------------------------ *)
(* E15: Monte-Carlo approximation convergence *)

let e15 () =
  section "E15" "FPRAS-style approximation: permutation sampling convergence";
  let f = Parser.formula_of_string_exn "x1 & (x2 | !x3)" in
  let vars = [ 1; 2; 3 ] in
  let exact = Naive.shap_subsets ~vars f in
  row "  exact: %s\n" (String.concat "  "
    (List.map (fun (i, v) -> Printf.sprintf "x%d=%s" i (Rat.to_string v)) exact));
  row "  %-10s %-12s %-12s %-10s\n" "samples" "max-error" "half-width"
    "within-CI";
  List.iter
    (fun m ->
       let est = Sampling.shap_sample ~seed:11 ~samples:m ~vars f in
       let max_err =
         List.fold_left
           (fun acc e ->
              let truth = Rat.to_float (List.assoc e.Sampling.variable exact) in
              Float.max acc (Float.abs (e.Sampling.value -. truth)))
           0.0 est
       in
       let hw = (List.hd est).Sampling.half_width in
       row "  %-10d %-12.5f %-12.5f %-10b\n" m max_err hw (max_err <= hw))
    (if quick then [ 100; 10000 ] else [ 100; 1000; 10000; 100000 ]);
  row "  (error shrinks ~ 1/sqrt(m), always within the Hoeffding width —\n";
  row "   the FPRAS contrast the paper draws with the SHAP score [3])\n"

(* ------------------------------------------------------------------ *)
(* E16: tractable-structure recognizers *)

let e16 () =
  section "E16" "Structure recognition: read-once factoring & beta-acyclicity";
  let cases =
    [ ("x2 & (x1 | x3)   [as DNF]",
       [ Vset.of_list [ 1; 2 ]; Vset.of_list [ 2; 3 ] ]);
      ("majority(x1,x2,x3)",
       [ Vset.of_list [ 1; 2 ]; Vset.of_list [ 2; 3 ]; Vset.of_list [ 1; 3 ] ]);
      ("(x1&x2) | (x3&x4)",
       [ Vset.of_list [ 1; 2 ]; Vset.of_list [ 3; 4 ] ]) ]
  in
  row "  read-once factoring:\n";
  List.iter
    (fun (name, d) ->
       match Read_once.factor d with
       | Some tree ->
         row "    %-24s read-once: %s\n" name
           (Formula.to_string (Read_once.tree_to_formula tree))
       | None -> row "    %-24s NOT read-once\n" name)
    cases;
  check "P4 DNF rejected"
    (not
       (Read_once.is_read_once
          [ Vset.of_list [ 1; 2 ]; Vset.of_list [ 2; 3 ]; Vset.of_list [ 3; 4 ] ]));
  row "\n  beta-acyclicity (the Section 3 tractable-CNF class):\n";
  List.iter
    (fun (name, edges, expected) ->
       let got = Hypergraph.is_beta_acyclic edges in
       row "    %-34s %b\n" name got;
       if got <> expected then exit 1)
    [ ("chain {12}{23}{34}",
       [ Vset.of_list [ 1; 2 ]; Vset.of_list [ 2; 3 ]; Vset.of_list [ 3; 4 ] ],
       true);
      ("triangle {12}{23}{13}",
       [ Vset.of_list [ 1; 2 ]; Vset.of_list [ 2; 3 ]; Vset.of_list [ 1; 3 ] ],
       false);
      ("alpha-but-not-beta {123}{12}{23}{13}",
       [ Vset.of_list [ 1; 2; 3 ]; Vset.of_list [ 1; 2 ]; Vset.of_list [ 2; 3 ];
         Vset.of_list [ 1; 3 ] ],
       false) ];
  (* read-once lineage goes straight to polynomial Shapley *)
  let d = [ Vset.of_list [ 1; 2 ]; Vset.of_list [ 2; 3 ] ] in
  (match Read_once.factor d with
   | Some tree ->
     let f = Read_once.tree_to_formula tree in
     let vars = [ 1; 2; 3 ] in
     check "factored Shapley = definitional Shapley"
       (shap_equal
          (Circuit_shapley.shap_direct ~vars (Compile.compile f))
          (Naive.shap_subsets ~vars (Nf.pdnf_to_formula d)))
   | None -> exit 1)

(* ------------------------------------------------------------------ *)
(* E17: the Olteanu–Huang OBDD route and the variable-order ablation *)

let e17 () =
  section "E17" "OBDD route [27]: plan-derived order vs hostile order";
  let q = Db_parser.parse_query "R(x), S(x, y)" in
  row "  lineage shape: OR_i (r_i AND OR_j s_ij); query %s\n" (Cq.to_string q);
  row "  %-8s %-8s %-12s %-14s %-12s\n" "blocks" "vars" "good-order"
    "hostile-order" "ratio";
  List.iter
    (fun blocks ->
       let db = Database.create () in
       Database.declare db "R" ~kind:Database.Endogenous ~arity:1;
       Database.declare db "S" ~kind:Database.Endogenous ~arity:2;
       for i = 1 to blocks do
         ignore (Database.insert db "R" [| Value.int i |])
       done;
       for i = 1 to blocks do
         for j = 1 to 2 do
           ignore (Database.insert db "S" [| Value.int i; Value.int j |])
         done
       done;
       let _, good = Safe_plan.lineage_obdd db q in
       let all = Vset.elements (Database.lineage_vars db) in
       let r_vars, s_vars =
         List.partition (fun v -> fst (Database.tuple_of_var db v) = "R") all
       in
       let bad_m = Obdd.create_manager ~order:(r_vars @ s_vars) in
       let bad = Obdd.of_formula bad_m (Lineage.lineage_formula db q) in
       row "  %-8d %-8d %-12d %-14d %-12.1f\n" blocks (List.length all)
         (Obdd.size good) (Obdd.size bad)
         (float_of_int (Obdd.size bad) /. float_of_int (Obdd.size good));
       (* both orders count identically *)
       let m_good, good' = Safe_plan.lineage_obdd db q in
       if
         not
           (Bigint.equal
              (Obdd.count m_good ~vars:all good')
              (Obdd.count bad_m ~vars:all bad))
       then exit 1)
    (if quick then [ 4; 8 ] else [ 4; 6; 8; 10; 12 ]);
  row "  (plan order: linear OBDD; blocks interleaved hostilely: ~2^blocks —\n";
  row "   the compilation sensitivity [27] that Claim 5.3 builds on)\n"

(* ------------------------------------------------------------------ *)
(* E18: the Karp–Luby FPRAS [20] vs exact counting *)

let e18 () =
  section "E18" "Karp-Luby FPRAS [20] on bipartite DNF vs exact counting";
  row "  %-8s %-10s %-14s %-14s %-12s %-10s\n" "a=b" "edges" "exact"
    "estimate" "rel-error" "time(s)";
  List.iter
    (fun a ->
       let inst = Bipartite.random ~a ~b:a ~density:0.3 ~seed:(a * 7) in
       if inst.Bipartite.edges <> [] then begin
         let d = Bipartite.to_pdnf inst in
         let vars = Bipartite.all_vars inst in
         let exact = Bipartite.count inst in
         let est, t =
           time (fun () ->
               Karp_luby.count_samples ~seed:3
                 ~samples:(if quick then 20000 else 60000)
                 ~vars d)
         in
         let exact_f = Bigint.to_float exact in
         row "  %-8d %-10d %-14s %-14.0f %-12.4f %-10.3f\n" a
           (List.length inst.Bipartite.edges)
           (Bigint.to_string exact) est.Karp_luby.value
           (Float.abs (est.Karp_luby.value -. exact_f) /. exact_f)
           t
       end)
    (if quick then [ 6; 10 ] else [ 6; 10; 14; 18 ]);
  row "  (estimator time scales with samples x clauses, independent of 2^n;\n";
  row "   the exact counter is exponential in the smaller part — the FPRAS\n";
  row "   contrast [20] the paper cites for model counting)\n"

(* ------------------------------------------------------------------ *)
(* E19: negated atoms through the compilation solver *)

let e19 () =
  section "E19" "Negated atoms [29]: lineage with negative literals, compiled";
  let db = Database.create () in
  Database.declare db "Emp" ~kind:Database.Endogenous ~arity:1;
  Database.declare db "Blocked" ~kind:Database.Endogenous ~arity:1;
  List.iter (fun i -> ignore (Database.insert db "Emp" [| Value.int i |])) [ 1; 2; 3 ];
  List.iter (fun i -> ignore (Database.insert db "Blocked" [| Value.int i |])) [ 1; 2 ];
  let q = Db_parser.parse_query "Emp(x), !Blocked(x)" in
  row "  query: %s\n" (Cq.to_string q);
  (match Dichotomy.classify q with
   | Dichotomy.Has_negation -> row "  classification: has negated atoms\n"
   | _ -> exit 1);
  let f = Lineage.lineage_formula db q in
  row "  lineage: %s\n" (Formula.to_string f);
  let shap, solver = Dichotomy.shapley db q in
  row "  solver: %s\n"
    (match solver with
     | Dichotomy.Compiled_dnf -> "compiled DNF"
     | Dichotomy.Safe_plan_circuit -> "safe plan (unexpected)");
  List.iter
    (fun (v, value) ->
       let rel, tup = Database.tuple_of_var db v in
       row "    %s(%s) = %s\n" rel
         (String.concat "," (List.map Value.to_string (Array.to_list tup)))
         (Rat.to_string value))
    shap;
  check "matches the exponential reference"
    (shap_equal shap (Dichotomy.shapley_brute db q));
  check "negative literals present in the lineage"
    (not (Nf.is_positive f))

(* ------------------------------------------------------------------ *)
(* E20: the --jobs domain pool *)

let e20 () =
  section "E20" "Parallel oracle fan-out: jobs in {1, 2, 4} agree exactly";
  let st = Random.State.make [| 41 |] in
  let n = if quick then 6 else 8 in
  let f = random_full_formula st ~nvars:n ~depth:n in
  let vars = List.init n succ in
  row "  host domains recommended: %d  (speedups need > 1 core; equality\n"
    (Domain.recommended_domain_count ());
  row "  holds regardless)\n";
  row "  %-6s %-12s %-12s %-8s\n" "jobs" "shap(s)" "kcounts(s)" "calls";
  let reference = ref None in
  let all_equal = ref true in
  List.iter
    (fun jobs ->
       Par.set_jobs jobs;
       let before = Obs.call_count () in
       let shap, t_shap =
         time (fun () ->
             Pipeline.shap_via_count_oracle ~oracle:Pipeline.dpll_count_oracle
               ~vars f)
       in
       let kv, t_k =
         time (fun () ->
             Pipeline.kcounts_via_count_oracle
               ~oracle:Pipeline.dpll_count_oracle ~vars f)
       in
       let calls = Obs.call_count () - before in
       row "  %-6d %-12.4f %-12.4f %-8d\n" jobs t_shap t_k calls;
       match !reference with
       | None -> reference := Some (shap, kv, calls)
       | Some (shap0, kv0, calls0) ->
         if not (shap_equal shap shap0 && Kvec.equal kv kv0 && calls = calls0)
         then all_equal := false)
    [ 1; 2; 4 ];
  Par.set_jobs 1;
  check "results and oracle-call totals independent of jobs" !all_equal

(* ------------------------------------------------------------------ *)
(* E21: the serving cache — warm vs cold amortization *)

let e21 () =
  section "E21"
    "Serving cache: warm requests amortize compilation and counting";
  let db, q =
    Hardness.encode (Bipartite.random ~a:4 ~b:4 ~density:0.5 ~seed:21)
  in
  let cache = Cache.create () in
  (* The fresh solver makes no ledgered oracle calls (it runs the direct
     Theorem 4.1 algorithm inline), so every call counted below is the
     cached pipeline's: compilation and count-vector fills on the cold
     pass, nothing on the warm ones. *)
  let fresh, _ = Dichotomy.shapley db q in
  let cold_before = Obs.call_count () in
  let (cold, _), t_cold =
    time (fun () -> Dichotomy.shapley_cached ~cache db q)
  in
  let cold_calls = Obs.call_count () - cold_before in
  let reps = 5 in
  let warm = ref [] in
  let warm_before = Obs.call_count () in
  let _, t_warm =
    time (fun () ->
        for _ = 1 to reps do
          warm := fst (Dichotomy.shapley_cached ~cache db q) :: !warm
        done)
  in
  let warm_calls = Obs.call_count () - warm_before in
  row "  %-22s %-8s %-12s\n" "phase" "calls" "seconds";
  row "  %-22s %-8d %-12.4f\n" "cold (first request)" cold_calls t_cold;
  row "  %-22s %-8d %-12.4f\n"
    (Printf.sprintf "warm (%d repeats)" reps)
    warm_calls t_warm;
  check "cold cached answer = fresh solve" (shap_equal cold fresh);
  check "warm answers identical to cold"
    (List.for_all (fun r -> shap_equal r cold) !warm);
  check "warm path is oracle-free" (warm_calls = 0);
  check "cold pays at least 5x the warm oracle calls"
    (cold_calls > 0 && 5 * warm_calls <= cold_calls);
  (* Invalidation: an endogenous insert re-pays the affected lineage
     (and only it), and the answer stays exact. *)
  ignore (Database.insert db "R" [| Value.int 99 |]);
  ignore (Dichotomy.invalidate ~cache db "R");
  let inv_before = Obs.call_count () in
  let (after_insert, _), t_inv =
    time (fun () -> Dichotomy.shapley_cached ~cache db q)
  in
  let inv_calls = Obs.call_count () - inv_before in
  row "  %-22s %-8d %-12.4f\n" "after insert+invalidate" inv_calls t_inv;
  check "post-insert cached answer = fresh solve"
    (shap_equal after_insert (fst (Dichotomy.shapley db q)));
  check "invalidated lineage is re-paid" (inv_calls > 0)

(* ------------------------------------------------------------------ *)
(* E22: the exact-arithmetic kernel in isolation — small (native tier),
   medium and large (limb tier, schoolbook vs Karatsuba) operand sizes,
   plus the Rat.add reduction chain the Shapley recombination leans on.
   Deterministic workloads; any regression here shows up before it is
   diluted by the end-to-end sections. *)

let e22 () =
  section "E22" "Arith kernel: mul/divmod/Rat.add at three operand sizes";
  let iters n = if quick then n / 4 else n in
  (* Small tier: an LCG-style chain whose values stay well inside the
     native range, so this measures the overflow-checked fast paths. *)
  let small_n = iters 400_000 in
  let small, t_small =
    time (fun () ->
        let acc = ref Bigint.zero in
        let x = ref (Bigint.of_int 1) in
        for _ = 1 to small_n do
          x := Bigint.add_int (Bigint.mul_int !x 48271) 11;
          x := snd (Bigint.divmod !x (Bigint.of_int 2147483647));
          acc := Bigint.add !acc !x
        done;
        !acc)
  in
  row "  %-34s %8d iters %10.4f s\n" "small: native mul/divmod chain"
    small_n t_small;
  (* Medium tier: the 120x80-digit pair the micro section also pins. *)
  let med_a = Bigint.of_string (String.make 120 '7') in
  let med_b = Bigint.of_string (String.make 80 '3') in
  let med_n = iters 20_000 in
  let _, t_med_mul =
    time (fun () ->
        for _ = 1 to med_n do ignore (Bigint.mul med_a med_b) done)
  in
  let _, t_med_div =
    time (fun () ->
        for _ = 1 to med_n do ignore (Bigint.divmod med_a med_b) done)
  in
  row "  %-34s %8d iters %10.4f s\n" "medium: mul 120x80 digits" med_n
    t_med_mul;
  row "  %-34s %8d iters %10.4f s\n" "medium: divmod 120/80 digits" med_n
    t_med_div;
  (* Large tier: thousands of digits, deep inside Karatsuba territory. *)
  let big_a = Bigint.of_string (String.init 2400 (fun i -> Char.chr (Char.code '1' + (i * 7 mod 9)))) in
  let big_b = Bigint.of_string (String.init 1600 (fun i -> Char.chr (Char.code '1' + (i * 5 mod 9)))) in
  let big_n = iters 400 in
  let _, t_big_mul =
    time (fun () ->
        for _ = 1 to big_n do ignore (Bigint.mul big_a big_b) done)
  in
  let _, t_big_div =
    time (fun () ->
        for _ = 1 to big_n do ignore (Bigint.divmod big_a big_b) done)
  in
  row "  %-34s %8d iters %10.4f s\n" "large: mul 2400x1600 digits" big_n
    t_big_mul;
  row "  %-34s %8d iters %10.4f s\n" "large: divmod 2400/1600 digits" big_n
    t_big_div;
  (* Rat.add chain: partial harmonic sums exercise the gcd-of-denominators
     reduction on steadily growing denominators. *)
  let harm_terms = 120 in
  let harm_reps = iters 200 in
  let h, t_rat =
    time (fun () ->
        let h = ref Rat.zero in
        for _ = 1 to harm_reps do
          h := Rat.zero;
          for k = 1 to harm_terms do
            h := Rat.add !h (Rat.make Bigint.one (Bigint.of_int k))
          done
        done;
        !h)
  in
  row "  %-34s %8d iters %10.4f s\n"
    (Printf.sprintf "Rat.add: harmonic H_%d" harm_terms)
    harm_reps t_rat;
  check "small chain stays in the native tier"
    (Bigint.sign small > 0 && Bigint.Internal.is_small small
     && Bigint.lt small (Bigint.mul_int (Bigint.of_int small_n) 2147483647));
  check "karatsuba = schoolbook on the large pair"
    (Bigint.equal (Bigint.mul big_a big_b)
       (Bigint.Internal.mul_schoolbook big_a big_b));
  check "large divmod reconstructs"
    (let q, r = Bigint.divmod big_a big_b in
     Bigint.equal big_a (Bigint.add (Bigint.mul q big_b) r));
  check "H_4 = 25/12"
    (Rat.equal
       (List.fold_left
          (fun acc k -> Rat.add acc (Rat.make Bigint.one (Bigint.of_int k)))
          Rat.zero [ 1; 2; 3; 4 ])
       (Rat.make (Bigint.of_int 25) (Bigint.of_int 12)));
  ignore h

(* ------------------------------------------------------------------ *)
(* E23: the observable estimator suite — samples-to-ε on a pinned seed
   (the convergence-rate regression the gate guards: each estimator's
   batches are ledgered as [estimator.<name>] oracle calls, so
   baseline.json pins batch counts and per-batch sample totals), the
   jobs-independence contract, and the satellite micro-assert that the
   table-based variable→index mapping in [shap_sample] reproduces the
   old linear-scan sampler exactly. *)

(* The pre-optimization shap_sample: identical RNG stream and arithmetic,
   inner linear scan for the variable→index mapping.  Kept here as the
   reference for the micro-assert (and to measure what the fix bought). *)
let shap_sample_linear_scan ~seed ~delta ~samples ~vars f =
  let st = Random.State.make [| seed |] in
  let sorted = Array.of_list (List.sort compare vars) in
  let n = Array.length sorted in
  let totals = Array.make n 0 in
  let perm = Array.copy sorted in
  for _ = 1 to samples do
    for i = n - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    let prefix = ref Vset.empty in
    let value = ref (Formula.eval_set Vset.empty f) in
    Array.iter
      (fun v ->
         let next = Vset.add v !prefix in
         let value' = Formula.eval_set next f in
         let marginal = Bool.to_int value' - Bool.to_int !value in
         let rec idx i = if sorted.(i) = v then i else idx (i + 1) in
         let i = idx 0 in
         totals.(i) <- totals.(i) + marginal;
         prefix := next;
         value := value')
      perm
  done;
  let m = float_of_int samples in
  let half_width = 2.0 *. sqrt (log (2.0 /. delta) /. (2.0 *. m)) in
  Array.to_list
    (Array.mapi
       (fun i v ->
          { Sampling.variable = sorted.(i);
            value = float_of_int v /. m;
            half_width })
       totals)

let e23 () =
  section "E23"
    "Observable estimators: samples-to-eps, early stopping, jobs identity";
  let f =
    Parser.formula_of_string_exn "(x1 & x2) | (x3 & x4) | (x1 & x5 & x6)"
  in
  let vars = List.init 6 succ in
  let exact = Naive.shap_subsets ~vars f in
  let eps = 0.05 and delta = 0.05 in
  row "  target: eps=%.2f delta=%.2f (Hoeffding budget: %d samples)\n" eps
    delta
    (Sampling.samples_for ~eps ~delta);
  row "  %-13s %-9s %-9s %-12s %-11s %-9s %-8s\n" "estimator" "samples"
    "evals" "half-width" "checkpoints" "max-err" "in-CI";
  let reports =
    List.map
      (fun est ->
         let r =
           Sampling.shap_estimate ~estimator:est ~seed:23 ~eps ~delta ~vars f
         in
         let hw = Convergence.max_certified_half_width r.Sampling.monitor in
         let max_err =
           List.fold_left
             (fun acc (e : Sampling.estimate) ->
                let truth =
                  Rat.to_float (List.assoc e.Sampling.variable exact)
                in
                Float.max acc (Float.abs (e.Sampling.value -. truth)))
             0.0 r.Sampling.estimates
         in
         let cps = Convergence.checkpoints r.Sampling.monitor in
         row "  %-13s %-9d %-9d %-12.5f %-11d %-9.5f %-8b\n"
           (Sampling.estimator_name est)
           r.Sampling.samples_used r.Sampling.evals hw (List.length cps)
           max_err (max_err <= hw);
         (est, r, cps))
      Sampling.[ Permutation; Truncated; Antithetic; Stratified ]
  in
  let get est =
    let _, r, cps = List.find (fun (e, _, _) -> e = est) reports in
    (r, cps)
  in
  let perm_r, _ = get Sampling.Permutation in
  let trunc_r, trunc_cps = get Sampling.Truncated in
  check "truncated estimates = permutation estimates (same RNG stream)"
    (List.for_all2
       (fun (a : Sampling.estimate) (b : Sampling.estimate) ->
          a.Sampling.variable = b.Sampling.variable
          && a.Sampling.value = b.Sampling.value)
       perm_r.Sampling.estimates trunc_r.Sampling.estimates);
  check "truncation saves oracle evaluations"
    (trunc_r.Sampling.evals < perm_r.Sampling.evals);
  check "every estimator stopped at or before the Hoeffding budget"
    (List.for_all
       (fun (_, r, _) ->
          r.Sampling.samples_used <= Sampling.samples_for ~eps ~delta)
       reports);
  check "checkpoint samples strictly increase, half-widths never widen"
    (List.for_all
       (fun (_, _, cps) ->
          let rec ok = function
            | a :: (b :: _ as rest) ->
              a.Convergence.k_samples < b.Convergence.k_samples
              && b.Convergence.k_max_half_width
                 <= a.Convergence.k_max_half_width
              && ok rest
            | _ -> true
          in
          ok cps)
       reports);
  check "truncated run converged below eps"
    (trunc_r.Sampling.converged
     && Convergence.max_certified_half_width trunc_r.Sampling.monitor <= eps
     && List.length trunc_cps > 0);
  (* jobs-independence: the acceptance contract of the estimator engine *)
  let at_jobs jobs =
    Par.set_jobs jobs;
    let r =
      Sampling.shap_estimate ~estimator:Sampling.Antithetic ~seed:23 ~eps
        ~delta ~vars f
    in
    Par.set_jobs 1;
    r
  in
  let r1 = at_jobs 1 and r4 = at_jobs 4 in
  check "antithetic at jobs=4 is bit-identical to jobs=1"
    (r1.Sampling.samples_used = r4.Sampling.samples_used
     && List.for_all2
          (fun (a : Sampling.estimate) (b : Sampling.estimate) ->
             a.Sampling.value = b.Sampling.value
             && a.Sampling.half_width = b.Sampling.half_width)
          r1.Sampling.estimates r4.Sampling.estimates);
  (* satellite micro-assert: the table-based index mapping reproduces the
     linear-scan sampler bit for bit, and what the O(n²)→O(n) fix buys *)
  let micro_n = if quick then 48 else 96 in
  let micro_samples = if quick then 150 else 300 in
  let wide =
    Formula.or_
      (List.init (micro_n / 2) (fun i ->
           Formula.conj2 (Formula.var ((2 * i) + 1)) (Formula.var ((2 * i) + 2))))
  in
  let wide_vars = List.init micro_n succ in
  let old_est, t_old =
    time (fun () ->
        shap_sample_linear_scan ~seed:5 ~delta:0.05 ~samples:micro_samples
          ~vars:wide_vars wide)
  in
  let new_est, t_new =
    time (fun () ->
        Sampling.shap_sample ~seed:5 ~delta:0.05 ~samples:micro_samples
          ~vars:wide_vars wide)
  in
  row "  index-mapping micro (n=%d, %d samples): linear scan %.4f s, \
       table %.4f s\n"
    micro_n micro_samples t_old t_new;
  check "table-based shap_sample = linear-scan shap_sample"
    (List.for_all2
       (fun (a : Sampling.estimate) (b : Sampling.estimate) ->
          a.Sampling.variable = b.Sampling.variable
          && a.Sampling.value = b.Sampling.value
          && a.Sampling.half_width = b.Sampling.half_width)
       old_est new_est);
  (* Karp–Luby through the same convergence stream *)
  let d =
    [ Vset.of_list [ 1; 2 ]; Vset.of_list [ 3; 4 ]; Vset.of_list [ 1; 5; 6 ] ]
  in
  let kl_samples = if quick then 2000 else 8000 in
  let monitor =
    Convergence.create ~ci:Convergence.Bernstein ~delta:0.05 ~range:1.0
      ~estimator:"karp-luby" ~players:1 ()
  in
  let kl =
    Karp_luby.count_samples ~monitor ~seed:23 ~samples:kl_samples ~vars:vars d
  in
  Convergence.finish monitor;
  let kl_exact = Bigint.to_float (Dpll.count_universe ~vars f) in
  row "  karp-luby: %d samples, estimate %.1f (exact %.0f), coverage \
       half-width %.5f, %d checkpoints\n"
    kl.Karp_luby.samples kl.Karp_luby.value kl_exact
    (Convergence.max_certified_half_width monitor)
    (Convergence.emitted monitor);
  check "karp-luby convergence stream advanced to the sample count"
    (Convergence.samples monitor = kl_samples
     && Convergence.emitted monitor > 0);
  check "karp-luby estimate within 10% of exact"
    (Float.abs (kl.Karp_luby.value -. kl_exact) <= 0.1 *. kl_exact)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel) *)

let micro () =
  section "M" "Micro-benchmarks (bechamel; ns/run, linear fit)";
  let open Bechamel in
  let big_a = Bigint.of_string (String.make 120 '7') in
  let big_b = Bigint.of_string (String.make 80 '3') in
  let st = Random.State.make [| 31 |] in
  let f12 = random_full_formula st ~nvars:12 ~depth:6 in
  let circuit12 = Compile.compile f12 in
  let vars12 = List.init 12 succ in
  let points = Reductions.or_points ~count:16 in
  (* Integer values, as in the real reductions (model counts). *)
  let values = Array.init 16 (fun i -> Rat.of_int ((i * i * 7) + 1)) in
  let db, q0 =
    Hardness.encode (Bipartite.random ~a:4 ~b:4 ~density:0.5 ~seed:3)
  in
  let tests =
    [ Test.make ~name:"bigint-mul-120x80-digits"
        (Staged.stage (fun () -> ignore (Bigint.mul big_a big_b)));
      Test.make ~name:"bigint-divmod-120/80-digits"
        (Staged.stage (fun () -> ignore (Bigint.divmod big_a big_b)));
      Test.make ~name:"vandermonde-solve-16"
        (Staged.stage (fun () ->
             ignore (Linalg.vandermonde_solve ~points ~values)));
      Test.make ~name:"obdd-of-formula-12vars"
        (Staged.stage (fun () ->
             let m = Obdd.create_manager ~order:vars12 in
             ignore (Obdd.of_formula m f12)));
      Test.make ~name:"compile-dDNNF-12vars"
        (Staged.stage (fun () -> ignore (Compile.compile f12)));
      Test.make ~name:"circuit-kcount-12vars"
        (Staged.stage (fun () ->
             ignore (Count.count_by_size ~vars:vars12 circuit12)));
      Test.make ~name:"dpll-count-12vars"
        (Staged.stage (fun () -> ignore (Dpll.count f12)));
      Test.make ~name:"lineage-q0-8tuples"
        (Staged.stage (fun () -> ignore (Lineage.lineage db q0)));
      Test.make ~name:"circuit-shapley-12vars"
        (Staged.stage (fun () ->
             ignore (Circuit_shapley.shap_direct ~vars:vars12 circuit12)))
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:(Some 500) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       let results =
         Analyze.all
           (Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |])
           Toolkit.Instance.monotonic_clock results
       in
       Hashtbl.iter
         (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> row "  %-34s %12.1f ns/run\n" name est
            | _ -> row "  %-34s (no estimate)\n" name)
         results)
    tests

(* ------------------------------------------------------------------ *)

(* Every section runs inside a fresh Obs ledger; the per-section oracle
   and timing breakdowns are written as one JSON object per section to
   BENCH_STATS.json (override the path with SHAPMC_BENCH_STATS, disable
   with SHAPMC_BENCH_STATS=none), so benchmark trajectories record not
   just wall times but where the oracle calls and time went. *)
let experiments =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19); ("E20", e20); ("E21", e21);
    ("E22", e22); ("E23", e23); ("M", micro) ]

(* The compact per-section record the regression gate (compare.ml)
   diffs against bench/baseline.json: wall-clock plus the oracle-call
   totals of the section's reductions.  The workloads above use pinned
   Random.State seeds, so the call totals — the paper's cost measure —
   are exactly reproducible; only the wall-clock needs a tolerance. *)
let results_entry ~id ~dt =
  let oracles =
    String.concat ","
      (List.map
         (fun (name, a) ->
            Printf.sprintf
              "\"%s\":{\"calls\":%d,\"n_max\":%d,\"l_max\":%d,\"max_size\":%d,\
               \"seconds\":%s}"
              name a.Obs.a_calls a.Obs.a_n_max a.Obs.a_l_max a.Obs.a_size_max
              (Obs.json_float a.Obs.a_seconds))
         (Obs.aggregate ()))
  in
  Printf.sprintf "\"%s\":{\"seconds\":%s,\"oracles\":{%s}}" id
    (Obs.json_float dt) oracles

(* The per-section line item of the append-only bench history
   (BENCH_history.jsonl): wall-clock and oracle-call totals as in the
   regression record, plus the observability signals this run produced —
   oracle-latency percentiles rebuilt from the [oracle_seconds]
   histograms, the Gc deltas bracketing the section, and pool
   utilization (busy / (busy + idle), [null] when no parallel map ran).
   Schema changes must bump the top-level "schema" field. *)
let history_entry ~id ~dt ~alloc ~minor ~major =
  let latency =
    match Metrics.find_histograms "oracle_seconds" with
    | [] -> "\"p50_ms\":null,\"p99_ms\":null"
    | series ->
      let h = Histogram.create () in
      List.iter (fun (_, s) -> Histogram.merge_into ~into:h s) series;
      let ms q = Obs.json_float (1000. *. Histogram.percentile h q) in
      Printf.sprintf "\"p50_ms\":%s,\"p99_ms\":%s" (ms 0.5) (ms 0.99)
  in
  let pool_util =
    let busy = Metrics.counter_total "pool_worker_busy_seconds" in
    let idle = Metrics.counter_total "pool_worker_idle_seconds" in
    if busy +. idle > 0.0 then Printf.sprintf "%.4f" (busy /. (busy +. idle))
    else "null"
  in
  Printf.sprintf
    "\"%s\":{\"seconds\":%s,\"calls\":%d,%s,\"alloc_bytes\":%.0f,\
     \"minor_collections\":%d,\"major_collections\":%d,\"pool_util\":%s}"
    id (Obs.json_float dt) (Obs.call_count ()) latency alloc minor major
    pool_util

let () =
  Printf.printf
    "shapmc benchmark harness — reproduction of Kara/Olteanu/Suciu, PODS 2024\n";
  Printf.printf "mode: %s\n" (if quick then "quick" else "full");
  let stats_path =
    Option.value ~default:"BENCH_STATS.json"
      (Sys.getenv_opt "SHAPMC_BENCH_STATS")
  in
  let results_path =
    Option.value ~default:"BENCH_results.json"
      (Sys.getenv_opt "SHAPMC_BENCH_RESULTS")
  in
  let history_path =
    Option.value ~default:"BENCH_history.jsonl"
      (Sys.getenv_opt "SHAPMC_BENCH_HISTORY")
  in
  let t0 = Unix.gettimeofday () in
  let sections =
    List.map
      (fun (id, f) ->
         Obs.reset ();
         Obs.enable ();
         let alloc0 = Obs.allocated_bytes_now () in
         let gc0 = Gc.quick_stat () in
         let s0 = Unix.gettimeofday () in
         f ();
         let dt = Unix.gettimeofday () -. s0 in
         let gc1 = Gc.quick_stat () in
         let alloc = Obs.allocated_bytes_now () -. alloc0 in
         let stats_json =
           Printf.sprintf "\"%s\":{\"seconds\":%.3f,\"stats\":%s}" id dt
             (Obs.to_json ())
         in
         let result_json = results_entry ~id ~dt in
         let history_json =
           history_entry ~id ~dt ~alloc
             ~minor:(gc1.Gc.minor_collections - gc0.Gc.minor_collections)
             ~major:(gc1.Gc.major_collections - gc0.Gc.major_collections)
         in
         Obs.reset ();
         (stats_json, (result_json, history_json)))
      experiments
  in
  let sections = List.map (fun (s, (r, h)) -> (s, r, h)) sections in
  Obs.disable ();
  let mode = if quick then "quick" else "full" in
  let total = Unix.gettimeofday () -. t0 in
  if stats_path <> "none" then begin
    let oc = open_out stats_path in
    output_string oc
      (Printf.sprintf "{\"mode\":\"%s\",\"sections\":{%s}}\n" mode
         (String.concat "," (List.map (fun (s, _, _) -> s) sections)));
    close_out oc;
    Printf.printf "\nPer-section oracle/timing stats written to %s\n"
      stats_path
  end;
  if results_path <> "none" then begin
    let oc = open_out results_path in
    output_string oc
      (Printf.sprintf "{\"mode\":\"%s\",\"sections\":{%s}}\n" mode
         (String.concat "," (List.map (fun (_, r, _) -> r) sections)));
    close_out oc;
    Printf.printf
      "Regression-gate results written to %s (diff with bench/compare.exe)\n"
      results_path
  end;
  if history_path <> "none" then begin
    (* Append-only: one line per run, so the committed file accumulates a
       timeline of cost profiles across commits.  Stamp each line with
       the commit it was produced at so the timeline stays attributable
       after rebases; "unknown" outside a git checkout. *)
    let commit =
      try
        let ic =
          Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
        in
        let line = try String.trim (input_line ic) with End_of_file -> "" in
        match (Unix.close_process_in ic, line) with
        | Unix.WEXITED 0, l when l <> "" -> l
        | _ -> "unknown"
      with Unix.Unix_error _ | Sys_error _ -> "unknown"
    in
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 history_path
    in
    output_string oc
      (Printf.sprintf
         "{\"schema\":1,\"ts\":%.0f,\"commit\":\"%s\",\"mode\":\"%s\",\
          \"total_seconds\":%s,\"sections\":{%s}}\n"
         (Unix.time ()) commit mode (Obs.json_float total)
         (String.concat "," (List.map (fun (_, _, h) -> h) sections)));
    close_out oc;
    Printf.printf "Run summary appended to %s\n" history_path
  end;
  Printf.printf "\nAll experiment sections completed in %.1fs.\n" total
